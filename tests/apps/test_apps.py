"""Tests for the simulated benchmark applications (Table 1 / Table 2 shapes).

The exact-count assertions use the small problem size where the counts are
size-independent (they are determined by the mapping structure, not by the
array sizes); the Medium-size Table 1 reproduction is exercised end-to-end by
the benchmark harness and summarised in EXPERIMENTS.md.
"""

import pytest

from repro.apps.base import AppVariant, ProblemSize
from repro.apps.registry import (
    EVALUATION_APP_NAMES,
    HECBENCH_APP_NAMES,
    all_apps,
    evaluation_apps,
    get_app,
    hecbench_apps,
)
from repro.core.profiler import OMPDataPerf, run_uninstrumented

_TOOL = OMPDataPerf()


def _counts(app_name: str, variant: AppVariant, size: ProblemSize = ProblemSize.SMALL):
    app = get_app(app_name)
    result = _TOOL.profile(app.build_program(size, variant),
                           program_name=app.program_name(size, variant))
    return result.analysis.counts


class TestRegistry:
    def test_all_fifteen_apps_registered(self):
        assert len(all_apps()) == 15
        assert set(EVALUATION_APP_NAMES) <= set(all_apps())
        assert set(HECBENCH_APP_NAMES) <= set(all_apps())

    def test_groups(self):
        assert list(evaluation_apps()) == list(EVALUATION_APP_NAMES)
        assert list(hecbench_apps()) == list(HECBENCH_APP_NAMES)

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            get_app("does-not-exist")

    def test_every_app_reports_inputs_for_all_sizes(self):
        for app in all_apps().values():
            info = app.info()
            assert set(info.inputs) == set(ProblemSize)
            assert all(info.inputs.values())

    def test_unsupported_variant_raises(self):
        with pytest.raises(ValueError):
            get_app("lud").build_program(ProblemSize.SMALL, AppVariant.FIXED)
        with pytest.raises(ValueError):
            get_app("bfs").build_program(ProblemSize.SMALL, AppVariant.SYNTHETIC)


class TestTable1BaselineShapes:
    """Issue-class structure of the shipped applications (Table 1, baseline rows)."""

    def test_bfs_exact_counts(self):
        c = _counts("bfs", AppVariant.BASELINE)
        assert c.as_dict() == {"DD": 18, "RT": 10, "RA": 9, "UA": 0, "UT": 0}

    def test_bfs_fixed_counts(self):
        c = _counts("bfs", AppVariant.FIXED)
        assert c.as_dict() == {"DD": 1, "RT": 0, "RA": 0, "UA": 0, "UT": 0}

    def test_hotspot_counts(self):
        assert _counts("hotspot", AppVariant.BASELINE).as_dict() == {
            "DD": 2, "RT": 0, "RA": 0, "UA": 0, "UT": 0}

    def test_lud_and_nw_are_clean(self):
        for name in ("lud", "nw"):
            assert _counts(name, AppVariant.BASELINE).total == 0

    def test_minife_exact_counts(self):
        c = _counts("minife", AppVariant.BASELINE)
        assert c.as_dict() == {"DD": 402, "RT": 4, "RA": 398, "UA": 0, "UT": 0}

    def test_minife_fixed_counts(self):
        c = _counts("minife", AppVariant.FIXED)
        assert c.as_dict() == {"DD": 3, "RT": 0, "RA": 0, "UA": 0, "UT": 0}

    def test_minifmm_counts(self):
        assert _counts("minifmm", AppVariant.BASELINE).as_dict() == {
            "DD": 3, "RT": 0, "RA": 0, "UA": 0, "UT": 0}

    def test_rsbench_xsbench_single_round_trip(self):
        for name in ("rsbench", "xsbench"):
            assert _counts(name, AppVariant.BASELINE).as_dict() == {
                "DD": 0, "RT": 1, "RA": 0, "UA": 0, "UT": 0}
            assert _counts(name, AppVariant.FIXED).total == 0

    def test_babelstream_counts_scale_with_iterations(self):
        c = _counts("babelstream", AppVariant.BASELINE)
        iterations = get_app("babelstream").parameters(ProblemSize.SMALL)["iterations"]
        assert c.duplicate_transfers == iterations - 1
        assert c.repeated_allocations == iterations - 1

    def test_tealeaf_structure(self):
        c = _counts("tealeaf", AppVariant.BASELINE)
        params = get_app("tealeaf").parameters(ProblemSize.SMALL)
        inner = params["total_inner_iterations"]
        assert c.repeated_allocations == 2 * (inner - 1)
        assert c.round_trips == params["outer_steps"] - 1
        assert c.duplicate_transfers > c.repeated_allocations  # zeros aliasing adds a few


class TestSyntheticVariants:
    def test_hotspot_synthetic_counts(self):
        c = _counts("hotspot", AppVariant.SYNTHETIC)
        assert c.as_dict() == {"DD": 12, "RT": 4, "RA": 10, "UA": 0, "UT": 0}

    def test_minifmm_synthetic_counts(self):
        c = _counts("minifmm", AppVariant.SYNTHETIC)
        assert c.as_dict() == {"DD": 75, "RT": 64, "RA": 57, "UA": 57, "UT": 76}

    def test_nw_synthetic_counts(self):
        c = _counts("nw", AppVariant.SYNTHETIC)
        assert c.as_dict() == {"DD": 8, "RT": 0, "RA": 4, "UA": 1, "UT": 3}

    def test_lud_synthetic_has_every_issue_class(self):
        c = _counts("lud", AppVariant.SYNTHETIC)
        assert all(v > 0 for v in c.as_dict().values())

    def test_tealeaf_synthetic_dominates_baseline(self):
        base = _counts("tealeaf", AppVariant.BASELINE)
        syn = _counts("tealeaf", AppVariant.SYNTHETIC)
        assert syn.duplicate_transfers > base.duplicate_transfers
        assert syn.round_trips > 100 * base.round_trips


class TestFixesImproveRuntime:
    @pytest.mark.parametrize("name", ["bfs", "minife", "rsbench", "xsbench"])
    def test_fixed_variant_is_faster(self, name):
        app = get_app(name)
        base = run_uninstrumented(app.build_program(ProblemSize.SMALL, AppVariant.BASELINE))
        fixed = run_uninstrumented(app.build_program(ProblemSize.SMALL, AppVariant.FIXED))
        assert fixed < base

    def test_bfs_small_speedup_is_about_2x(self):
        app = get_app("bfs")
        base = run_uninstrumented(app.build_program(ProblemSize.SMALL, AppVariant.BASELINE))
        fixed = run_uninstrumented(app.build_program(ProblemSize.SMALL, AppVariant.FIXED))
        assert base / fixed == pytest.approx(2.1, rel=0.25)

    def test_prediction_tracks_actual_for_bfs(self):
        app = get_app("bfs")
        profile = _TOOL.profile(app.build_program(ProblemSize.SMALL, AppVariant.BASELINE))
        predicted = profile.analysis.potential.predicted_speedup
        base = run_uninstrumented(app.build_program(ProblemSize.SMALL, AppVariant.BASELINE))
        fixed = run_uninstrumented(app.build_program(ProblemSize.SMALL, AppVariant.FIXED))
        actual = base / fixed
        assert abs(predicted - actual) / actual < 0.4


class TestHecBenchShapes:
    def test_issue_classes_match_table2(self):
        expected = {
            "resize-omp": {"DD", "RA"},
            "mandelbrot-omp": {"DD", "RA", "UA"},
            "accuracy-omp": {"DD", "UA", "UT"},
            "lif-omp": set(),
            "bspline-vgh-omp": {"DD", "UA", "UT"},
        }
        for name, classes in expected.items():
            counts = _counts(name, AppVariant.BASELINE)
            assert set(counts.issue_classes()) == classes, name

    def test_bspline_fix_reduces_h2d_call_count_by_99_percent(self):
        app = get_app("bspline-vgh-omp")
        before = _TOOL.profile(app.build_program(ProblemSize.MEDIUM, AppVariant.BASELINE))
        after = _TOOL.profile(app.build_program(ProblemSize.MEDIUM, AppVariant.FIXED))
        n_before = len(before.trace.transfers_to_devices())
        n_after = len(after.trace.transfers_to_devices())
        assert n_after <= n_before * 0.02

    def test_hecbench_fixes_are_faster_or_equal(self):
        for name in ("resize-omp", "mandelbrot-omp", "accuracy-omp", "bspline-vgh-omp"):
            app = get_app(name)
            base = run_uninstrumented(app.build_program(ProblemSize.SMALL, AppVariant.BASELINE))
            fixed = run_uninstrumented(app.build_program(ProblemSize.SMALL, AppVariant.FIXED))
            assert fixed <= base


class TestDeterminism:
    @pytest.mark.parametrize("name", ["bfs", "hotspot", "rsbench"])
    def test_repeated_runs_identical(self, name):
        first = _counts(name, AppVariant.BASELINE)
        second = _counts(name, AppVariant.BASELINE)
        assert first == second
