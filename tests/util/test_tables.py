"""Tests for table rendering and unit formatting."""

import pytest

from repro.util.tables import Table, format_bytes, format_percent, format_seconds


class TestFormatBytes:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (1024, "1.00 KiB"),
            (1536, "1.50 KiB"),
            (1 << 20, "1.00 MiB"),
            (3 * (1 << 30), "3.00 GiB"),
        ],
    )
    def test_known_values(self, value, expected):
        assert format_bytes(value) == expected

    def test_negative(self):
        assert format_bytes(-1024) == "-1.00 KiB"


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "value,unit",
        [(5e-9, "ns"), (5e-6, "us"), (5e-3, "ms"), (5.0, "s")],
    )
    def test_units(self, value, unit):
        assert format_seconds(value).endswith(unit)

    def test_zero(self):
        assert format_seconds(0.0) == "0 s"


def test_format_percent():
    assert format_percent(0.051) == "5.1%"


class TestTable:
    def test_render_alignment(self):
        t = Table(["name", "count"], title="demo")
        t.add_row(["bfs", 18])
        t.add_row(["babelstream", 499])
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "=== demo ==="
        assert "name" in lines[1] and "count" in lines[1]
        assert len({len(line) >= len("name") for line in lines[1:]}) == 1

    def test_row_length_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            Table([])

    def test_to_records(self):
        t = Table(["a", "b"])
        t.add_row([1, 2.5])
        assert t.to_records() == [{"a": "1", "b": "2.500"}]

    def test_rows_returns_copy(self):
        t = Table(["a"])
        t.add_row([1])
        rows = t.rows
        rows[0][0] = "mutated"
        assert t.rows[0][0] == "1"
