"""Tests for deterministic RNG construction."""

import numpy as np

from repro.util.rng import make_rng


def test_same_seed_parts_same_stream():
    a = make_rng("bfs", 4096).random(8)
    b = make_rng("bfs", 4096).random(8)
    assert np.array_equal(a, b)


def test_different_parts_different_stream():
    a = make_rng("bfs", 4096).random(8)
    b = make_rng("bfs", 8192).random(8)
    assert not np.array_equal(a, b)


def test_part_order_matters():
    a = make_rng("a", "b").random(4)
    b = make_rng("b", "a").random(4)
    assert not np.array_equal(a, b)
