"""Tests for the statistics helpers used by the evaluation harness."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.stats import (
    geometric_mean,
    harmonic_mean,
    mean_relative_error,
    mean_squared_error,
    percentile,
    summarize,
)


class TestGeometricMean:
    def test_single_value(self):
        assert geometric_mean([2.0]) == pytest.approx(2.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_slowdown_style_values(self):
        # Typical Figure-2 style slowdowns.
        values = [1.02, 1.05, 1.33, 1.0, 1.07]
        result = geometric_mean(values)
        assert min(values) <= result <= max(values)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([-1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20))
    def test_bounded_by_min_and_max(self, values):
        result = geometric_mean(values)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20))
    def test_below_arithmetic_mean(self, values):
        assert geometric_mean(values) <= sum(values) / len(values) + 1e-9


class TestHarmonicMean:
    def test_known_value(self):
        assert harmonic_mean([1.0, 3.0]) == pytest.approx(1.5)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            harmonic_mean([0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=20))
    def test_below_geometric_mean(self, values):
        assert harmonic_mean(values) <= geometric_mean(values) + 1e-9


class TestErrorMetrics:
    def test_mse_zero_for_perfect_prediction(self):
        assert mean_squared_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_mse_known_value(self):
        assert mean_squared_error([1.0, 3.0], [2.0, 1.0]) == pytest.approx(2.5)

    def test_relative_error_known_value(self):
        assert mean_relative_error([1.1, 2.2], [1.0, 2.0]) == pytest.approx(0.1)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            mean_relative_error([1.0], [1.0, 2.0])

    def test_zero_actual_rejected(self):
        with pytest.raises(ValueError):
            mean_relative_error([1.0], [0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error([], [])


class TestPercentile:
    def test_median_of_odd_sample(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == pytest.approx(2.0)

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25.0) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 9.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestSummarize:
    def test_basic_summary(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.mean == pytest.approx(2.5)
        assert s.median == pytest.approx(2.5)
        assert s.stddev == pytest.approx(math.sqrt(1.25))

    def test_as_dict_round_trip(self):
        d = summarize([2.0, 2.0]).as_dict()
        assert d["count"] == 2
        assert d["stddev"] == pytest.approx(0.0)
