"""Targeted tests for the incremental (streaming) detector variants.

The three-way differential property test covers random traces; these tests
pin down the cross-shard mechanics — carries that must survive a shard
boundary — plus the stream-level analysis entry point.
"""

from __future__ import annotations

import pytest

from repro.core.analysis import analyze_stream, analyze_trace
from repro.core.detectors.duplicates import (
    find_duplicate_transfers,
    find_duplicate_transfers_streaming,
)
from repro.core.detectors.repeated_allocs import (
    find_repeated_allocations,
    find_repeated_allocations_streaming,
)
from repro.core.detectors.roundtrips import find_round_trips, find_round_trips_streaming
from repro.core.detectors.unused_allocs import (
    find_unused_allocations,
    find_unused_allocations_streaming,
)
from repro.core.detectors.unused_transfers import (
    find_unused_transfers,
    find_unused_transfers_streaming,
)
from repro.events.columnar import ColumnarTrace
from repro.events.store import shard_trace
from repro.events.stream import as_event_stream

from tests.conftest import TraceBuilder


def _stream(trace, shard_events):
    return as_event_stream(ColumnarTrace.from_trace(trace), shard_events)


def _assert_all_shard_sizes(trace, finder, expected):
    """``finder(stream)`` must equal ``expected`` for every shard size."""
    for shard_events in range(1, len(trace) + 2):
        got = finder(_stream(trace, shard_events))
        assert got == expected, f"shard_events={shard_events}"


def test_duplicate_group_spanning_shards(builder):
    # Three receipts of the same payload, far apart: the key must cross the
    # two-member threshold mid-stream and recover its first occurrence.
    b = builder
    b.alloc(0x100, 0xA000)
    b.h2d(0x100, 0xA000, content_hash=7)
    b.kernel()
    b.h2d(0x100, 0xA000, content_hash=7)
    b.kernel()
    b.h2d(0x100, 0xA000, content_hash=7)
    b.delete(0x100, 0xA000)
    trace = b.build()
    expected = find_duplicate_transfers(trace.data_op_events)
    assert len(expected) == 1 and len(expected[0].events) == 3

    _assert_all_shard_sizes(trace, find_duplicate_transfers_streaming, expected)


def test_missing_hash_raises_in_streaming(builder):
    b = builder
    b.alloc(0x100, 0xA000)
    b.h2d(0x100, 0xA000, content_hash=1)
    trace = b.build()
    ct = ColumnarTrace.from_trace(trace)
    ct.do_has_content_hash[1] = False  # corrupt in place
    with pytest.raises(ValueError, match="missing its content hash"):
        find_duplicate_transfers_streaming(as_event_stream(ct, 1))
    with pytest.raises(ValueError, match="missing its content hash"):
        find_round_trips_streaming(as_event_stream(ct, 1))


def test_round_trip_legs_in_different_shards(builder):
    b = builder
    b.alloc(0x100, 0xA000)
    b.h2d(0x100, 0xA000, content_hash=42)
    b.kernel()
    b.idle(1e-4)
    b.d2h(0x100, 0xA000, content_hash=42)  # unmodified payload travels back
    b.delete(0x100, 0xA000)
    trace = b.build()
    expected = find_round_trips(trace.data_op_events)
    assert sum(g.num_trips for g in expected) == 1

    _assert_all_shard_sizes(trace, find_round_trips_streaming, expected)


def test_repeated_alloc_pair_spanning_shards(builder):
    # alloc in one shard, delete shards later; the same (addr, device, size)
    # key repeats, so the pairer's open-alloc carry and the counter's
    # first-pair payload both cross boundaries.
    b = builder
    for _ in range(3):
        b.alloc(0x100, 0xA000)
        b.h2d(0x100, 0xA000, content_hash=1)
        b.kernel()
        b.delete(0x100, 0xA000)
    trace = b.build()
    expected = find_repeated_allocations(trace.data_op_events)
    assert len(expected) == 1 and len(expected[0].allocations) == 3

    _assert_all_shard_sizes(trace, find_repeated_allocations_streaming, expected)


def test_repeated_alloc_overlapping_lifetimes_deletes_across_shards(builder):
    # Two overlapping allocations of the same (host addr, device, size) key
    # whose deletes land in reverse order: the pairs complete out of alloc
    # order, so the key's retained first pair is NOT the minimal-gpos one
    # when the second pair arrives.  Regression test for the crossed-key
    # recovery returning the wrong member.
    b = builder
    a1 = b.alloc(0x1000, 0x500)
    a2 = b.alloc(0x1000, 0x600)  # same key, overlapping lifetime
    b.kernel()
    b.delete(0x1000, 0x600)  # closes a2 first...
    b.delete(0x1000, 0x500)  # ...a1 completes later (possibly shards later)
    trace = b.build()
    expected = find_repeated_allocations(trace.data_op_events)
    assert len(expected) == 1
    assert [p.alloc_event.seq for p in expected[0].allocations] == [a1.seq, a2.seq]

    _assert_all_shard_sizes(trace, find_repeated_allocations_streaming, expected)


def test_unused_alloc_decided_only_at_finalize(builder):
    # The second allocation's lifetime starts after the last kernel: its
    # cursor never resolves and it must fall out of finalize as unused.
    b = builder
    b.alloc(0x100, 0xA000)
    b.kernel()
    b.delete(0x100, 0xA000)
    b.alloc(0x200, 0xB000)  # never deleted, after the last kernel
    trace = b.build()
    expected = find_unused_allocations(trace.target_events, trace.data_op_events, 1)
    assert len(expected) == 1

    _assert_all_shard_sizes(
        trace, lambda s: find_unused_allocations_streaming(s, 1), expected
    )


def test_unused_transfer_epoch_spanning_shards(builder):
    # Two same-address transfers in one epoch (overwrite), separated so the
    # candidate map must survive a shard boundary, plus an after-last tail.
    b = builder
    b.alloc(0x100, 0xA000)
    b.alloc(0x200, 0xB000)
    b.h2d(0x100, 0xA000, content_hash=1)
    b.h2d(0x200, 0xB000, content_hash=2)
    b.h2d(0x100, 0xA000, content_hash=3)  # overwrites the first, unread
    b.kernel()
    b.idle(1e-3)
    b.h2d(0x100, 0xA000, content_hash=4)  # after the last kernel
    b.delete(0x100, 0xA000)
    b.delete(0x200, 0xB000)
    trace = b.build()
    expected = find_unused_transfers(trace.target_events, trace.data_op_events, 1)
    reasons = sorted(f.reason for f in expected)
    assert reasons == ["after_last_kernel", "overwritten"]

    _assert_all_shard_sizes(
        trace, lambda s: find_unused_transfers_streaming(s, 1), expected
    )


def test_streaming_detectors_handle_empty_stream():
    empty = ColumnarTrace(num_devices=2)
    stream = as_event_stream(empty)
    assert find_duplicate_transfers_streaming(stream) == []
    assert find_round_trips_streaming(stream) == []
    assert find_repeated_allocations_streaming(stream) == []
    assert find_unused_allocations_streaming(stream) == []
    assert find_unused_transfers_streaming(stream) == []


def test_streaming_num_devices_validation():
    empty = ColumnarTrace(num_devices=0)
    with pytest.raises(ValueError, match="at least 1"):
        find_unused_allocations_streaming(as_event_stream(empty))
    with pytest.raises(ValueError, match="at least 1"):
        find_unused_transfers_streaming(as_event_stream(empty))


# --------------------------------------------------------------------- #
# analyze_stream
# --------------------------------------------------------------------- #
def _issue_rich_trace():
    b = TraceBuilder(num_devices=2)
    for i in range(12):
        dev = i % 2
        host, daddr = 0x100 + dev * 0x10, 0xA000 + i * 0x100
        b.alloc(host, daddr, device=dev)
        b.h2d(host, daddr, content_hash=1 + (i % 2), device=dev)
        if i % 3 != 0:
            b.kernel(device=dev)
        b.d2h(host, daddr, content_hash=1 + (i % 2), device=dev)
        b.delete(host, daddr, device=dev)
    return b.build()


@pytest.mark.parametrize("jobs", [1, 3])
def test_analyze_stream_matches_analyze_trace(tmp_path, jobs):
    trace = _issue_rich_trace()
    ct = ColumnarTrace.from_trace(trace)
    expected = analyze_trace(trace)
    store = shard_trace(ct, tmp_path / f"t{jobs}.store", shard_events=9)
    report = analyze_stream(store, jobs=jobs)

    assert report.counts == expected.counts
    assert report.potential == expected.potential
    assert report.duplicate_groups == expected.duplicate_groups
    assert report.round_trip_groups == expected.round_trip_groups
    assert report.repeated_alloc_groups == expected.repeated_alloc_groups
    assert report.unused_allocations == expected.unused_allocations
    assert report.unused_transfers == expected.unused_transfers
    # The report's trace view answers the aggregate surface from the manifest
    # and renders without materialising events.
    assert report.trace.summary() == ct.summary()
    assert "Optimization Potential" in report.render()


def test_analyze_stream_rejects_bad_jobs():
    with pytest.raises(ValueError, match="jobs"):
        analyze_stream(as_event_stream(ColumnarTrace()), jobs=0)


# --------------------------------------------------------------------- #
# StreamAnalysisReport (the structured analyze_stream return)
# --------------------------------------------------------------------- #
def test_analyze_stream_returns_structured_report(builder):
    import warnings

    from repro.core.analysis import AnalysisReport, StreamAnalysisReport

    b = builder
    b.alloc(0x100, 0xA000)
    b.h2d(0x100, 0xA000, content_hash=7)
    b.kernel()
    b.h2d(0x100, 0xA000, content_hash=7)
    b.delete(0x100, 0xA000)
    trace = b.build()
    report = analyze_stream(_stream(trace, 3))

    assert isinstance(report, StreamAnalysisReport)
    assert isinstance(report, AnalysisReport)  # drop-in for old callers
    assert report.engine_name == "serial"
    assert isinstance(report.engine_stats, dict)
    timings = report.timings
    assert set(timings) == {"wall_seconds", "engine_seconds", "overhead_seconds"}
    assert timings["wall_seconds"] >= timings["engine_seconds"] >= 0.0
    assert timings["overhead_seconds"] >= 0.0

    by_pass = report.findings_by_pass
    assert list(by_pass) == [
        "duplicate_transfers", "round_trips", "repeated_allocations",
        "unused_allocations", "unused_transfers",
    ]
    assert by_pass["duplicate_transfers"] == report.duplicate_groups
    # Truthiness does not route through the deprecated sequence shim.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert bool(report)


def test_analyze_stream_report_sequence_shim_warns_once(builder):
    import warnings

    from repro.core.engine import _DEPRECATION_WARNED

    b = builder
    b.alloc(0x100, 0xA000)
    b.h2d(0x100, 0xA000, content_hash=7)
    b.delete(0x100, 0xA000)
    report = analyze_stream(_stream(b.build(), 2))

    _DEPRECATION_WARNED.discard("stream-report-sequence")
    with pytest.warns(DeprecationWarning, match="findings_by_pass"):
        dup, rt, ra, ua, ut = report  # the historic 5-list unpack
    assert dup == report.duplicate_groups
    assert ut == report.unused_transfers
    assert len(report) == 5
    assert report[1] == report.round_trip_groups
    # Single-warning policy: later sequence access stays silent.
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        list(report)
    assert caught == []
