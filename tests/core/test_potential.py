"""Tests for the optimization-potential estimator."""

import pytest

from repro.core.analysis import analyze_trace
from repro.core.potential import estimate_potential
from repro.core.detectors.duplicates import find_duplicate_transfers
from repro.core.detectors.roundtrips import find_round_trips

from tests.conftest import TraceBuilder


def test_no_findings_means_no_savings():
    b = TraceBuilder()
    b.h2d(0x1, 0xA, content_hash=1)
    b.kernel()
    trace = b.build()
    potential = estimate_potential(trace)
    assert potential.predicted_time_saved == 0.0
    assert potential.predicted_speedup == pytest.approx(1.0)
    assert potential.predicted_runtime == pytest.approx(trace.runtime)


def test_duplicate_savings_equal_redundant_transfer_time():
    b = TraceBuilder()
    b.h2d(0x1, 0xA, content_hash=1, duration=1e-3)
    b.kernel(duration=5e-3)
    b.h2d(0x1, 0xB, content_hash=1, duration=2e-3)
    b.kernel(duration=5e-3)
    trace = b.build()
    groups = find_duplicate_transfers(trace.data_op_events)
    potential = estimate_potential(trace, duplicate_groups=groups)
    assert potential.predicted_time_saved == pytest.approx(2e-3)
    assert potential.predicted_bytes_saved == 1024
    assert potential.predicted_ops_saved == 1
    expected_speedup = trace.runtime / (trace.runtime - 2e-3)
    assert potential.predicted_speedup == pytest.approx(expected_speedup)


def test_events_shared_between_findings_counted_once():
    # A transfer that is both a duplicate and a round-trip leg must only be
    # credited once in the savings estimate.
    b = TraceBuilder()
    b.h2d(0x1, 0xA, content_hash=1, duration=1e-3)
    b.kernel()
    b.d2h(0x1, 0xA, content_hash=1, duration=1e-3)
    b.h2d(0x1, 0xA, content_hash=1, duration=1e-3)
    b.kernel()
    trace = b.build()
    duplicates = find_duplicate_transfers(trace.data_op_events)
    roundtrips = find_round_trips(trace.data_op_events)
    assert duplicates and roundtrips
    combined = estimate_potential(
        trace, duplicate_groups=duplicates, round_trip_groups=roundtrips
    )
    only_roundtrips = estimate_potential(trace, round_trip_groups=roundtrips)
    assert combined.predicted_ops_saved <= 3
    assert combined.predicted_time_saved >= only_roundtrips.predicted_time_saved
    assert combined.predicted_time_saved <= trace.total_transfer_time() + 1e-12


def test_speedup_is_infinite_when_everything_is_removable():
    b = TraceBuilder()
    b.h2d(0x1, 0xA, content_hash=1, duration=1.0)
    b.h2d(0x1, 0xA, content_hash=1, duration=1.0)
    trace = b.build()
    trace.total_runtime = 2.0
    groups = find_duplicate_transfers(trace.data_op_events)
    # Force both events removable by also treating the trace as round trips.
    potential = estimate_potential(trace, duplicate_groups=groups)
    assert potential.predicted_speedup > 1.0


def test_as_dict_contains_all_metrics():
    b = TraceBuilder()
    b.h2d(0x1, 0xA, content_hash=1)
    b.h2d(0x1, 0xA, content_hash=1)
    b.kernel()
    report = analyze_trace(b.build())
    d = report.potential.as_dict()
    for key in ("measured_runtime", "predicted_time_saved", "predicted_speedup",
                "predicted_runtime", "predicted_ops_saved"):
        assert key in d
