"""Differential property test: object vs columnar vs streaming vs engines.

Every detector has three implementations — the object-based reference
oracle, the vectorised columnar fast path, and the incremental streaming
variant that folds an event stream shard by shard — and the streaming
variant additionally runs on four execution engines (serial scan,
thread-partitioned, process-partitioned over an on-disk store, and the
distributed coordinator/worker engine leasing tasks from a transport
queue).  For any well-formed trace every path must return *identical*
findings (same finding objects, in the same order, holding equal events),
for every shard size and partition count.  Hypothesis generates random
multi-device mapping histories plus a shard size (and worker count) and
the tests assert equality detector by detector, plus at the aggregated
analysis level, five ways: object, columnar, streaming, partition-merged
engine execution, and queue-fed distributed execution.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis import analyze_stream, analyze_trace
from repro.core.distributed import DistributedEngine
from repro.core.detectors.duplicates import (
    find_duplicate_transfers,
    find_duplicate_transfers_columnar,
    find_duplicate_transfers_streaming,
)
from repro.core.detectors.repeated_allocs import (
    find_repeated_allocations,
    find_repeated_allocations_columnar,
    find_repeated_allocations_streaming,
)
from repro.core.detectors.roundtrips import (
    find_round_trips,
    find_round_trips_columnar,
    find_round_trips_streaming,
)
from repro.core.detectors.unused_allocs import (
    find_unused_allocations,
    find_unused_allocations_columnar,
    find_unused_allocations_streaming,
)
from repro.core.detectors.unused_transfers import (
    find_unused_transfers,
    find_unused_transfers_columnar,
    find_unused_transfers_streaming,
)
from repro.events.columnar import ColumnarTrace
from repro.events.store import shard_trace
from repro.events.stream import as_event_stream
from repro.events.transport import FakeObjectStoreTransport

from tests.conftest import TraceBuilder

pytestmark = pytest.mark.slow

# One step of a variable's history: which operation happens next.
_STEP = st.sampled_from(["h2d", "d2h", "kernel", "remap", "idle", "double_h2d"])

# Shard sizes for the streaming variants: exercise one-event shards, shards
# cutting through the middle of a trace, and single-batch streams.
_SHARDS = st.integers(min_value=1, max_value=40)

# Worker counts for the partitioned engines: serial degenerate case up to
# more workers than most generated traces have shards.
_WORKERS = st.integers(min_value=1, max_value=4)


@st.composite
def mapping_traces(draw):
    """Generate a well-formed mapping history over one or two devices."""
    num_devices = draw(st.integers(min_value=1, max_value=2))
    num_vars = draw(st.integers(min_value=1, max_value=4))
    steps = draw(st.lists(st.tuples(st.integers(0, num_vars - 1), _STEP),
                          min_size=1, max_size=50))
    hash_pool = draw(st.lists(st.integers(1, 6), min_size=1, max_size=6))

    b = TraceBuilder(num_devices=num_devices)
    mapped: dict[int, int] = {}  # var -> device addr
    device_of_var = {v: v % num_devices for v in range(num_vars)}
    next_addr = 0xA000
    for var, step in steps:
        host_addr = 0x100 + var * 0x10
        device = device_of_var[var]
        if step == "kernel":
            b.kernel(device=device)
            continue
        if step == "idle":
            b.idle(1e-5)
            continue
        if var not in mapped:
            mapped[var] = next_addr
            next_addr += 0x100
            b.alloc(host_addr, mapped[var], device=device)
        content = hash_pool[(var + len(b.trace.data_op_events)) % len(hash_pool)]
        if step == "h2d":
            b.h2d(host_addr, mapped[var], content_hash=content, device=device)
        elif step == "double_h2d":
            b.h2d(host_addr, mapped[var], content_hash=content, device=device)
            b.h2d(host_addr, mapped[var], content_hash=content + 100, device=device)
        elif step == "d2h":
            b.d2h(host_addr, mapped[var], content_hash=content, device=device)
        elif step == "remap":
            b.delete(host_addr, mapped[var], device=device)
            b.alloc(host_addr, mapped[var], device=device)
    for var, addr in mapped.items():
        b.delete(0x100 + var * 0x10, addr, device=device_of_var[var])
    return b.build()


@settings(max_examples=120, deadline=None)
@given(mapping_traces(), _SHARDS)
def test_all_detectors_identical_across_representations(trace, shard_events):
    ct = ColumnarTrace.from_trace(trace)
    stream = as_event_stream(ct, shard_events)
    data_ops = trace.data_op_events
    targets = trace.target_events
    n = trace.num_devices

    expected = find_duplicate_transfers(data_ops)
    assert expected == find_duplicate_transfers_columnar(ct)
    assert expected == find_duplicate_transfers_streaming(stream)

    expected = find_round_trips(data_ops)
    assert expected == find_round_trips_columnar(ct)
    assert expected == find_round_trips_streaming(stream)

    expected = find_repeated_allocations(data_ops)
    assert expected == find_repeated_allocations_columnar(ct)
    assert expected == find_repeated_allocations_streaming(stream)

    expected = find_unused_allocations(targets, data_ops, n)
    assert expected == find_unused_allocations_columnar(ct, n)
    assert expected == find_unused_allocations_streaming(stream, n)

    expected = find_unused_transfers(targets, data_ops, n)
    assert expected == find_unused_transfers_columnar(ct, n)
    assert expected == find_unused_transfers_streaming(stream, n)


@settings(max_examples=60, deadline=None)
@given(mapping_traces(), st.integers(min_value=0, max_value=2048), _SHARDS)
def test_duplicate_min_bytes_threshold_identical(trace, min_bytes, shard_events):
    ct = ColumnarTrace.from_trace(trace)
    expected = find_duplicate_transfers(trace.data_op_events, min_bytes=min_bytes)
    assert expected == find_duplicate_transfers_columnar(ct, min_bytes=min_bytes)
    assert expected == find_duplicate_transfers_streaming(
        as_event_stream(ct, shard_events), min_bytes=min_bytes
    )


@settings(max_examples=60, deadline=None)
@given(mapping_traces(), _SHARDS)
def test_roundtrip_nonchronological_mode_identical(trace, shard_events):
    ct = ColumnarTrace.from_trace(trace)
    expected = find_round_trips(trace.data_op_events, require_chronological=False)
    assert expected == find_round_trips_columnar(ct, require_chronological=False)
    assert expected == find_round_trips_streaming(
        as_event_stream(ct, shard_events), require_chronological=False
    )


@settings(max_examples=60, deadline=None)
@given(mapping_traces(), _SHARDS)
def test_repeated_allocs_keep_undeleted_mode_identical(trace, shard_events):
    ct = ColumnarTrace.from_trace(trace)
    expected = find_repeated_allocations(trace.data_op_events, require_deletion=False)
    assert expected == find_repeated_allocations_columnar(ct, require_deletion=False)
    assert expected == find_repeated_allocations_streaming(
        as_event_stream(ct, shard_events), require_deletion=False
    )


def _assert_reports_equal(obj_report, report):
    assert obj_report.counts == report.counts
    assert obj_report.potential == report.potential
    assert obj_report.duplicate_groups == report.duplicate_groups
    assert obj_report.round_trip_groups == report.round_trip_groups
    assert obj_report.repeated_alloc_groups == report.repeated_alloc_groups
    assert obj_report.unused_allocations == report.unused_allocations
    assert obj_report.unused_transfers == report.unused_transfers


@settings(max_examples=40, deadline=None)
@given(mapping_traces(), _SHARDS, _WORKERS)
def test_full_analysis_identical_across_representations(trace, shard_events, workers):
    obj_report = analyze_trace(trace)
    col_report = analyze_trace(ColumnarTrace.from_trace(trace))
    stream = as_event_stream(ColumnarTrace.from_trace(trace), shard_events)
    stream_report = analyze_stream(stream)
    thread_report = analyze_stream(stream, engine="thread", jobs=workers)
    for report in (col_report, stream_report, thread_report):
        _assert_reports_equal(obj_report, report)


@settings(max_examples=25, deadline=None)
@given(mapping_traces(), _SHARDS, _WORKERS)
def test_process_engine_identical_over_stores(trace, shard_events, workers):
    """The fourth way: process workers folding shard ranges of a real store.

    The trace goes to disk as a sharded store, the process engine folds
    partitions on worker processes (only carries cross the boundary), and
    the merged result must equal the object oracle bit for bit.
    """
    obj_report = analyze_trace(trace)
    scratch = tempfile.mkdtemp(prefix="ompdataperf-diff-")
    try:
        store = shard_trace(
            ColumnarTrace.from_trace(trace),
            Path(scratch) / "t.store",
            shard_events=shard_events,
        )
        process_report = analyze_stream(store, engine="process", jobs=workers)
        _assert_reports_equal(obj_report, process_report)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


@settings(max_examples=20, deadline=None)
@given(mapping_traces(), _SHARDS, _WORKERS)
def test_distributed_engine_identical_over_stores(trace, shard_events, workers):
    """The fifth leg: coordinator/worker execution over a task queue.

    The trace goes to disk as a sharded store, a distributed coordinator
    publishes partition tasks into a scratch queue, thread-mode workers
    lease them over the full blob protocol (claim renames, heartbeats,
    pickled carry results), and the merged result must equal the object
    oracle bit for bit — for random shard sizes and worker counts.
    """
    obj_report = analyze_trace(trace)
    scratch = tempfile.mkdtemp(prefix="ompdataperf-diff-")
    try:
        store = shard_trace(
            ColumnarTrace.from_trace(trace),
            Path(scratch) / "t.store",
            shard_events=shard_events,
        )
        engine = DistributedEngine(
            worker_mode="thread", poll_interval=0.01, run_timeout=120.0
        )
        report = analyze_stream(store, engine=engine, jobs=workers)
        _assert_reports_equal(obj_report, report)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


@settings(max_examples=15, deadline=None)
@given(mapping_traces(), _SHARDS, _WORKERS)
def test_distributed_engine_identical_over_remote_transports(
    trace, shard_events, workers
):
    """The fifth leg over non-local storage: the store's shards live in a
    zip archive or an S3-like object store, and for the latter the queue
    itself is object-store backed too (claims become copy-then-delete)."""
    obj_report = analyze_trace(trace)
    scratch = tempfile.mkdtemp(prefix="ompdataperf-diff-")
    try:
        zip_store = shard_trace(
            ColumnarTrace.from_trace(trace),
            Path(scratch) / "t.zip",
            shard_events=shard_events,
        )
        engine = DistributedEngine(
            worker_mode="thread", poll_interval=0.01, run_timeout=120.0
        )
        _assert_reports_equal(
            obj_report, analyze_stream(zip_store, engine=engine, jobs=workers)
        )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    remote_store = shard_trace(
        ColumnarTrace.from_trace(trace),
        FakeObjectStoreTransport(),
        shard_events=shard_events,
    )
    engine = DistributedEngine(
        queue=FakeObjectStoreTransport(),
        workers=workers,
        worker_mode="thread",
        poll_interval=0.01,
        run_timeout=120.0,
    )
    _assert_reports_equal(
        obj_report, analyze_stream(remote_store, engine=engine, jobs=workers)
    )


@settings(max_examples=25, deadline=None)
@given(mapping_traces(), _SHARDS, _WORKERS)
def test_process_engine_identical_over_remote_transport(trace, shard_events, workers):
    """The fourth way again, with the store behind a non-local transport.

    The shards live in a fake object store (S3-like get/put/list), the
    workers reopen it from its picklable transport spec, and both the
    folds and the finalize-side materialisation scans run against the
    remote blobs — findings must still equal the object oracle bit for
    bit.
    """
    obj_report = analyze_trace(trace)
    remote = FakeObjectStoreTransport()
    store = shard_trace(
        ColumnarTrace.from_trace(trace), remote, shard_events=shard_events
    )
    process_report = analyze_stream(store, engine="process", jobs=workers)
    _assert_reports_equal(obj_report, process_report)


@settings(max_examples=20, deadline=None)
@given(mapping_traces(), _SHARDS, _WORKERS, st.randoms(use_true_random=False))
def test_incremental_merge_identical_under_adversarial_orders(
    trace, shard_events, workers, rng
):
    """The sixth leg: merge-as-they-land under adversarial arrival orders.

    The distributed coordinator folds each partition carry into running
    per-pass chains the moment it lands (:class:`CarryFolder`), in
    whatever order workers finish.  Feed the same partition carries in
    reversed, interleaved, random, and duplicated orders and the
    finalized findings must equal the object oracle bit for bit — the
    merge contract is associative over contiguous runs, and duplicates
    (zombie re-publishes) are dropped at the door.
    """
    from repro.core.detectors.duplicates import DuplicateTransferPass
    from repro.core.detectors.repeated_allocs import RepeatedAllocationPass
    from repro.core.detectors.roundtrips import RoundTripPass
    from repro.core.detectors.unused_allocs import UnusedAllocationPass
    from repro.core.detectors.unused_transfers import UnusedTransferPass
    from repro.core.distributed import CarryFolder, _finalize_all
    from repro.core.engine import PassSpec, _fold_partition, partition_tasks
    from repro.events.stream import StreamPartition

    obj_report = analyze_trace(trace)
    expected = [
        obj_report.duplicate_groups,
        obj_report.round_trip_groups,
        obj_report.repeated_alloc_groups,
        obj_report.unused_allocations,
        obj_report.unused_transfers,
    ]
    scratch = tempfile.mkdtemp(prefix="ompdataperf-diff-")
    try:
        store = shard_trace(
            ColumnarTrace.from_trace(trace),
            Path(scratch) / "t.store",
            shard_events=shard_events,
        )
        tasks = partition_tasks(store, workers + 1)
        if not tasks:
            return  # single-partition stream: nothing to merge
        num_devices = max(store.num_devices, 1)
        specs = (
            PassSpec(DuplicateTransferPass),
            PassSpec(RoundTripPass),
            PassSpec(RepeatedAllocationPass),
            PassSpec(UnusedAllocationPass, {"num_devices": num_devices}),
            PassSpec(UnusedTransferPass, {"num_devices": num_devices}),
        )

        def chains():
            return [
                _fold_partition(
                    specs,
                    StreamPartition(
                        store, t.lo, t.hi, t.data_op_offset, t.num_events
                    ),
                )
                for t in tasks
            ]

        shuffled = list(range(len(tasks)))
        rng.shuffle(shuffled)
        orders = [
            list(reversed(range(len(tasks)))),
            list(range(0, len(tasks), 2)) + list(range(1, len(tasks), 2)),
            shuffled,
        ]
        for order in orders:
            folder = CarryFolder(len(tasks))
            fresh = chains()
            for index in order:
                assert folder.add(index, fresh[index])
                if rng.random() < 0.5:
                    # A zombie's bit-identical duplicate, rejected.
                    assert not folder.add(index, fresh[index])
            assert folder.complete and folder.chains_held == 1
            assert _finalize_all(folder.result(), store, 1) == expected
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
