"""Tests for the distributed execution engine and its task-queue protocol.

Three layers:

* **queue protocol** — :class:`TaskQueue` driven directly over a local
  directory and the fake object store (claims race to one winner,
  heartbeats advance, results round-trip, markers terminate);
* **engine correctness** — thread-mode workers (the full blob protocol
  without subprocess cost) over every store transport, plus one real
  loopback-process run;
* **failure handling** — a worker killed mid-fold (the CLI crash hook
  leaves the lease dangling exactly like a dead machine) has its task
  requeued and the findings stay bit-identical; retries are bounded and
  exhaust into a :class:`DistributedExecutionError` plus an ``abort``
  marker every waiting worker obeys.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import threading
import time

import pytest

from repro.core.analysis import analyze_stream, analyze_trace
from repro.core.distributed import (
    CRASH_ENV,
    CRASH_EXIT_CODE,
    DistributedEngine,
    DistributedExecutionError,
    QUEUE_FORMAT_VERSION,
    TaskQueue,
)
from repro.core.engine import (
    ENGINES,
    PartitionTask,
    available_engines,
    partition_tasks,
    resolve_engine,
)
from repro.events.store import shard_trace
from repro.events.stream import as_event_stream
from repro.events.synth import make_synthetic_columnar_trace
from repro.events.transport import FakeObjectStoreTransport, LocalDirTransport

WORKER_POLL = "0.05"


@pytest.fixture(scope="module")
def trace():
    return make_synthetic_columnar_trace(3_000)


@pytest.fixture(scope="module")
def store(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("distributed-store") / "trace.store"
    return shard_trace(trace, path, shard_events=512)


@pytest.fixture(scope="module")
def expected(trace):
    return _findings(analyze_trace(trace))


def _findings(report):
    return (
        report.counts,
        report.duplicate_groups,
        report.round_trip_groups,
        report.repeated_alloc_groups,
        report.unused_allocations,
        report.unused_transfers,
        report.potential,
    )


def _worker_cmd(queue_path):
    return [
        sys.executable, "-m", "repro.cli", "worker",
        "--queue", str(queue_path), "--poll-interval", WORKER_POLL, "-q",
    ]


def _worker_env(**extra):
    repo_src = str(os.path.join(os.path.dirname(__file__), "..", "..", "src"))
    env = dict(os.environ)
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra)
    return env


def _coordinate_in_thread(store, engine, jobs):
    """Run analyze_stream on a daemon thread; outcome lands in the dict."""
    out: dict = {}

    def target():
        try:
            out["report"] = analyze_stream(store, engine=engine, jobs=jobs)
        except BaseException as exc:  # noqa: BLE001 — surfaced by the test
            out["error"] = exc

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, out


# --------------------------------------------------------------------- #
# Registration and resolution
# --------------------------------------------------------------------- #
def test_distributed_engine_registered():
    assert "distributed" in ENGINES
    assert "distributed" in available_engines()
    engine = resolve_engine("distributed")
    assert isinstance(engine, DistributedEngine)
    # The default (self-hosted) shape: scratch queue, loopback processes.
    assert engine.queue is None and engine.worker_mode == "process"


def test_engine_parameter_validation():
    with pytest.raises(ValueError, match="worker mode"):
        DistributedEngine(worker_mode="carrier-pigeon")
    with pytest.raises(ValueError, match="lease_timeout"):
        DistributedEngine(lease_timeout=0)
    with pytest.raises(ValueError, match="max_attempts"):
        DistributedEngine(max_attempts=0)


def test_requires_sharded_store(trace):
    stream = as_event_stream(trace, 512)
    with pytest.raises(TypeError, match="ShardedTraceStore"):
        analyze_stream(stream, engine=DistributedEngine(), jobs=2)


def test_single_partition_degrades_to_serial(trace, tmp_path, expected):
    store = shard_trace(trace, tmp_path / "one.store", shard_events=10**9)
    engine = DistributedEngine(worker_mode="thread")
    report = analyze_stream(store, engine=engine, jobs=4)
    assert _findings(report) == expected
    assert engine.stats == {}  # never coordinated: no queue was created


def test_attach_mode_degenerate_run_still_releases_workers(
    trace, tmp_path, expected
):
    """A single-partition run in attach mode must still create the queue
    and mark it done — external workers are watching that location and
    would otherwise poll forever for a run that never appears."""
    store = shard_trace(trace, tmp_path / "one.store", shard_events=10**9)
    queue_dir = tmp_path / "degenerate-queue"
    engine = DistributedEngine(queue=queue_dir, workers=0)
    report = analyze_stream(store, engine=engine, jobs=4)
    assert _findings(report) == expected
    assert (queue_dir / "done").is_file()
    # And a waiting worker actually exits on it.
    worker = subprocess.Popen(_worker_cmd(queue_dir), env=_worker_env())
    assert worker.wait(timeout=60) == 0


def test_rejects_zip_archive_queue(store, tmp_path):
    """A zip archive serializes every mutation through a whole-archive
    rewrite, so concurrent workers would erase each other's claims —
    both coordinator and worker must refuse one as the queue."""
    import zipfile

    zip_queue = tmp_path / "queue.zip"
    with zipfile.ZipFile(zip_queue, "w"):
        pass
    engine = DistributedEngine(queue=zip_queue, workers=0, worker_mode="thread")
    with pytest.raises(ValueError, match="cannot back a task queue"):
        analyze_stream(store, engine=engine, jobs=2)
    worker = subprocess.Popen(_worker_cmd(zip_queue), env=_worker_env())
    assert worker.wait(timeout=60) == 1


def test_run_timeout_gives_clear_failure(store, tmp_path):
    """Attach mode with no workers: --queue-timeout/run_timeout converts
    an otherwise-silent forever-wait into a clear failure."""
    engine = DistributedEngine(
        queue=tmp_path / "abandoned-queue", workers=0,
        poll_interval=0.05, run_timeout=0.5,
    )
    with pytest.raises(DistributedExecutionError, match="did not complete"):
        analyze_stream(store, engine=engine, jobs=2)


def test_heartbeat_renews_on_a_timer_during_one_long_fold(trace, tmp_path):
    """Lease liveness must not depend on batch granularity: a run whose
    every shard folds slower than the lease timeout still completes with
    zero requeues, because the worker renews on a timer."""
    store = shard_trace(trace, tmp_path / "slow.store", shard_events=512)
    real_batches = type(store).batches

    def slow_batches(self):
        for batch in real_batches(self):
            time.sleep(0.5)  # one "shard fold" far beyond the lease
            yield batch

    engine = DistributedEngine(
        queue=tmp_path / "slow-queue", workers=1, worker_mode="thread",
        poll_interval=0.02, lease_timeout=0.3, max_attempts=2,
        run_timeout=60.0,
    )
    import unittest.mock

    with unittest.mock.patch.object(type(store), "batches", slow_batches):
        report = analyze_stream(store, engine=engine, jobs=2)
    assert report.counts is not None
    assert engine.stats["requeued"] == 0


def test_rejects_non_empty_queue(store, tmp_path):
    queue = tmp_path / "dirty-queue"
    queue.mkdir()
    (queue / "leftover").write_text("stale")
    engine = DistributedEngine(queue=queue, workers=0, worker_mode="thread")
    with pytest.raises(ValueError, match="non-empty queue"):
        analyze_stream(store, engine=engine, jobs=2)


# --------------------------------------------------------------------- #
# Queue protocol
# --------------------------------------------------------------------- #
@pytest.fixture(params=["local", "fake"])
def queue_transport(request, tmp_path):
    if request.param == "local":
        return LocalDirTransport(tmp_path / "queue", create=True)
    return FakeObjectStoreTransport()


def test_queue_protocol_round_trip(queue_transport):
    queue = TaskQueue(queue_transport)
    manifest = {"version": QUEUE_FORMAT_VERSION, "store_spec": {"kind": "x"}}
    assert queue.read_run() is None
    queue.publish_run(manifest)
    assert queue.read_run() == manifest

    task = PartitionTask(index=0, lo=0, hi=3, data_op_offset=0, num_events=99)
    queue.publish_task(task)
    pending = queue.pending_task_names()
    assert pending == ["tasks/task-00000.a000"]

    claim = queue.claim(pending[0], "worker-a")
    assert claim is not None
    assert claim.index == 0 and claim.attempt == 0 and claim.task == task
    # The pending blob is gone; a second claimant loses the race.
    assert queue.pending_task_names() == []
    assert queue.claim(pending[0], "worker-b") is None

    # Heartbeats advance a counter blob next to the claim; the payload
    # carries "<liveness counter>:<fold position>".
    beat_name = "beats/task-00000.a000.worker-a"
    assert queue_transport.read_blob(beat_name) == b"1:0"
    claim.progress = 42
    queue.heartbeat(claim)
    assert queue_transport.read_blob(beat_name) == b"2:42"

    # Results travel as one framed batch blob per claim sweep.
    queue.publish_result_batch("worker-a", 1, [(0, b"carry-0"), (7, b"carry-7")])
    batch_names = queue.result_batch_names()
    assert batch_names == ["results/rb-worker-a-00001"]
    assert queue.read_result_batch(batch_names[0]) == [
        (0, b"carry-0"),
        (7, b"carry-7"),
    ]
    queue.release(claim)
    assert not queue_transport.blob_exists(claim.name)
    assert not queue_transport.blob_exists(beat_name)

    assert not queue.is_done() and queue.abort_reason() is None
    queue.mark_done()
    assert queue.is_done()
    queue.mark_abort("boom")
    assert queue.abort_reason() == "boom"


def test_pending_listing_ignores_staging_and_debris(queue_transport):
    """In-flight staging files (`<name>.tmp-<pid>` on the local transport)
    and stray blobs must never be parsed — or claimed — as tasks."""
    queue = TaskQueue(queue_transport)
    task = PartitionTask(index=0, lo=0, hi=1, data_op_offset=0, num_events=5)
    queue.publish_task(task)
    queue_transport.write_blob("tasks/task-00001.a000.tmp-1234", b"half-written")
    queue_transport.write_blob("tasks/README", b"not a task")
    assert queue.pending_task_names() == ["tasks/task-00000.a000"]
    # Direct claims of non-task names are refused before any rename.
    assert queue.claim("tasks/task-00001.a000.tmp-1234", "w1") is None
    assert queue_transport.blob_exists("tasks/task-00001.a000.tmp-1234")


def test_claim_with_corrupt_payload_left_to_lease_expiry(queue_transport):
    """A truncated task payload (torn copy-then-delete rename) must not
    kill the worker; the claim is left dangling for the coordinator."""
    queue_transport.write_blob("tasks/task-00003.a000", b"\x80\x04 truncated")
    queue = TaskQueue(queue_transport)
    assert queue.claim("tasks/task-00003.a000", "w1") is None
    # The rename happened (the pending blob is consumed), so only the
    # coordinator's freeze detection can requeue it — by design.
    assert queue.pending_task_names() == []


def test_requeued_generation_never_collides(queue_transport):
    """Attempt tags keep a stale claim distinct from the live generation."""
    queue = TaskQueue(queue_transport)
    task = PartitionTask(index=2, lo=0, hi=1, data_op_offset=0, num_events=5)
    queue.publish_task(task, attempt=0)
    first = queue.claim("tasks/task-00002.a000", "w1")
    assert first is not None
    queue.publish_task(task, attempt=1)  # requeue while the claim dangles
    second = queue.claim("tasks/task-00002.a001", "w2")
    assert second is not None
    assert first.name != second.name
    assert second.attempt == 1


# --------------------------------------------------------------------- #
# Correctness across transports (thread-mode workers)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("destination", ["dir", "zip", "fake"])
@pytest.mark.parametrize("jobs", [2, 5])
def test_thread_workers_match_oracle_over_transports(
    trace, tmp_path, expected, destination, jobs
):
    if destination == "dir":
        target = tmp_path / "t.store"
    elif destination == "zip":
        target = tmp_path / "t.zip"
    else:
        target = FakeObjectStoreTransport()
    store = shard_trace(trace, target, shard_events=512)
    engine = DistributedEngine(
        worker_mode="thread", poll_interval=0.02, lease_timeout=30.0
    )
    report = analyze_stream(store, engine=engine, jobs=jobs)
    assert _findings(report) == expected
    assert engine.stats["tasks"] >= 2
    assert engine.stats["requeued"] == 0


def test_object_store_queue_and_store(trace, expected):
    """Queue *and* store on S3-like transports: claims go copy-then-delete."""
    store = shard_trace(trace, FakeObjectStoreTransport(), shard_events=512)
    queue = FakeObjectStoreTransport()
    engine = DistributedEngine(
        queue=queue, workers=2, worker_mode="thread",
        poll_interval=0.02, lease_timeout=30.0,
    )
    report = analyze_stream(store, engine=engine, jobs=3)
    assert _findings(report) == expected
    # Attach-style queues are left for post-mortem: done marker + results.
    assert queue.blob_exists("done")


def test_more_jobs_than_shards(store, expected):
    engine = DistributedEngine(worker_mode="thread", poll_interval=0.02)
    report = analyze_stream(store, engine=engine, jobs=64)
    assert _findings(report) == expected


def test_self_hosted_process_workers(store, expected):
    """The real thing once: loopback worker subprocesses over a scratch queue."""
    engine = DistributedEngine(poll_interval=0.05, lease_timeout=60.0)
    report = analyze_stream(store, engine=engine, jobs=2)
    assert _findings(report) == expected
    stats = engine.stats
    assert stats["tasks"] == 2 and stats["workers"] == 2
    assert stats["requeued"] == 0 and stats["respawned"] == 0
    assert stats["speculative_launches"] == 0
    assert stats["debris_blobs"] == 0 and stats["duplicate_results"] == 0
    # Healthy two-task runs coalesce on arrival: never more than one
    # un-merged chain per contiguous run.
    assert 1 <= stats["peak_unmerged_chains"] <= 2
    assert stats["hints"]["completed"] == 2
    assert stats["hints"]["suggested_worker_delta"] <= 0


# --------------------------------------------------------------------- #
# External workers (attach mode)
# --------------------------------------------------------------------- #
def test_attach_mode_with_external_worker(store, tmp_path, expected):
    queue_dir = tmp_path / "attach-queue"
    engine = DistributedEngine(
        queue=queue_dir, workers=0, poll_interval=0.05,
        lease_timeout=30.0, run_timeout=120.0,
    )
    thread, out = _coordinate_in_thread(store, engine, jobs=3)
    # The worker starts against a queue the coordinator may not have
    # created yet — exactly the CI smoke job's start order.
    worker = subprocess.Popen(_worker_cmd(queue_dir), env=_worker_env())
    try:
        thread.join(timeout=120)
        assert not thread.is_alive(), "coordinator did not finish"
        assert "report" in out, out.get("error")
        assert _findings(out["report"]) == expected
        assert worker.wait(timeout=60) == 0  # exits on the done marker
    finally:
        if worker.poll() is None:
            worker.kill()


def test_worker_death_recovery(store, tmp_path, expected):
    """Kill a worker mid-fold: the lease expires, the task is requeued,
    and the completed run's findings are bit-identical."""
    queue_dir = tmp_path / "death-queue"
    engine = DistributedEngine(
        queue=queue_dir, workers=0, poll_interval=0.05,
        lease_timeout=0.75, max_attempts=3, run_timeout=120.0,
    )
    thread, out = _coordinate_in_thread(store, engine, jobs=3)
    crasher = subprocess.Popen(
        _worker_cmd(queue_dir), env=_worker_env(**{CRASH_ENV: "1"})
    )
    healthy = None
    try:
        # The crash hook exits the worker right after its first claim,
        # leaving the lease and heartbeat dangling like a dead machine.
        assert crasher.wait(timeout=60) == CRASH_EXIT_CODE
        healthy = subprocess.Popen(_worker_cmd(queue_dir), env=_worker_env())
        thread.join(timeout=120)
        assert not thread.is_alive(), "coordinator did not finish"
        assert "report" in out, out.get("error")
        assert _findings(out["report"]) == expected
        assert engine.stats["requeued"] >= 1
        assert healthy.wait(timeout=60) == 0
    finally:
        for proc in (crasher, healthy):
            if proc is not None and proc.poll() is None:
                proc.kill()


def test_bounded_retries_then_clear_failure(store, tmp_path):
    """Every attempt dies -> abort marker + DistributedExecutionError."""
    queue_dir = tmp_path / "retry-queue"
    engine = DistributedEngine(
        queue=queue_dir, workers=0, poll_interval=0.05,
        lease_timeout=0.5, max_attempts=2, run_timeout=120.0,
    )
    thread, out = _coordinate_in_thread(store, engine, jobs=2)
    procs = []
    try:
        crasher = subprocess.Popen(
            _worker_cmd(queue_dir), env=_worker_env(**{CRASH_ENV: "1"})
        )
        procs.append(crasher)
        assert crasher.wait(timeout=60) == CRASH_EXIT_CODE
        # Wait for the requeued generation so the second crasher
        # deterministically claims it (attempt tags sort first).
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if list((queue_dir / "tasks").glob("task-*.a001")):
                break
            time.sleep(0.05)
        else:
            pytest.fail("expired lease was never requeued")
        crasher = subprocess.Popen(
            _worker_cmd(queue_dir), env=_worker_env(**{CRASH_ENV: "1"})
        )
        procs.append(crasher)
        assert crasher.wait(timeout=60) == CRASH_EXIT_CODE

        thread.join(timeout=120)
        assert not thread.is_alive(), "coordinator did not finish"
        error = out.get("error")
        assert isinstance(error, DistributedExecutionError)
        assert "attempt" in str(error) and "max_attempts=2" in str(error)
        # The abort marker turns away every later worker with an error.
        late = subprocess.Popen(_worker_cmd(queue_dir), env=_worker_env())
        procs.append(late)
        assert late.wait(timeout=60) == 1
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()


def test_worker_error_requeues_without_waiting_for_lease(trace, tmp_path):
    """A worker-side exception publishes an error blob; the coordinator
    requeues immediately (no lease wait) and exhausts into a clear abort."""
    store = shard_trace(trace, tmp_path / "t.store", shard_events=512)
    # Sabotage the store before the run: the coordinator partitions from
    # the manifest alone, but every worker reopening the store from its
    # spec finds the shard blobs gone and raises mid-fold.
    for shard in store.shards:
        store.transport.delete_blob(shard.file)
    engine = DistributedEngine(
        queue=tmp_path / "error-queue", workers=1, worker_mode="thread",
        poll_interval=0.02, lease_timeout=60.0, max_attempts=2,
        run_timeout=60.0,
    )
    started = time.monotonic()
    with pytest.raises(DistributedExecutionError) as excinfo:
        analyze_stream(store, engine=engine, jobs=2)
    # Error blobs short-circuit: both attempts fail well inside the 60s
    # lease timeout, so exhaustion cannot have come from lease expiry.
    assert time.monotonic() - started < 60.0
    assert "cannot read blob" in str(excinfo.value)
    assert engine.stats["requeued"] >= 1


# --------------------------------------------------------------------- #
# partition_tasks (the scheduling vocabulary shared with ProcessEngine)
# --------------------------------------------------------------------- #
def test_partition_tasks_mirror_store_partitions(store):
    tasks = partition_tasks(store, 3)
    parts = store.partitions(3)
    assert [t.index for t in tasks] == [0, 1, 2]
    assert [(t.lo, t.hi, t.data_op_offset, t.num_events) for t in tasks] == [
        (p.lo, p.hi, p.data_op_offset, p.num_events) for p in parts
    ]
    assert partition_tasks(store, 1) == []


# --------------------------------------------------------------------- #
# CarryFolder (incremental merge-as-they-land)
# --------------------------------------------------------------------- #
def _pass_specs(stream):
    from repro.core.detectors.duplicates import DuplicateTransferPass
    from repro.core.detectors.repeated_allocs import RepeatedAllocationPass
    from repro.core.detectors.roundtrips import RoundTripPass
    from repro.core.detectors.unused_allocs import UnusedAllocationPass
    from repro.core.detectors.unused_transfers import UnusedTransferPass
    from repro.core.engine import PassSpec

    num_devices = max(stream.num_devices, 1)
    return (
        PassSpec(DuplicateTransferPass),
        PassSpec(RoundTripPass),
        PassSpec(RepeatedAllocationPass),
        PassSpec(UnusedAllocationPass, {"num_devices": num_devices}),
        PassSpec(UnusedTransferPass, {"num_devices": num_devices}),
    )


def _partition_chains(store, specs, tasks):
    from repro.core.engine import _fold_partition
    from repro.events.stream import StreamPartition

    chains = []
    for task in tasks:
        partition = StreamPartition(
            store, task.lo, task.hi, task.data_op_offset, task.num_events
        )
        chains.append(_fold_partition(specs, partition))
    return chains


def _fold_in_order(store, order, duplicate=False):
    from repro.core.distributed import CarryFolder

    specs = _pass_specs(store)
    tasks = partition_tasks(store, 6)
    chains = _partition_chains(store, specs, tasks)
    folder = CarryFolder(len(tasks))
    for index in order:
        assert folder.add(index, chains[index])
        if duplicate:
            # A zombie's re-published duplicate: rejected at the door.
            assert not folder.add(index, chains[index])
    assert folder.complete
    return folder


def _serial_results(store):
    from repro.core.engine import SerialEngine

    return SerialEngine().run(_pass_specs(store), store, jobs=1)


def _finalized(folder, store):
    from repro.core.distributed import _finalize_all

    return _finalize_all(folder.result(), store, 1)


@pytest.mark.parametrize(
    "name, order, max_peak",
    [
        # In-order and reversed arrival coalesce into one contiguous run
        # on every add: the coordinator holds exactly one chain (i.e.
        # O(passes) carries), never one per task.
        ("in-order", [0, 1, 2, 3, 4, 5], 1),
        ("reversed", [5, 4, 3, 2, 1, 0], 1),
        # Evens-then-odds is the worst interleave for six tasks: three
        # disjoint runs before the odds stitch them together.
        ("interleaved", [0, 2, 4, 1, 3, 5], 3),
        ("shuffled", [3, 0, 5, 1, 4, 2], 3),
    ],
)
def test_carry_folder_adversarial_orders(store, expected, name, order, max_peak):
    folder = _fold_in_order(store, order)
    assert folder.chains_held == 1
    assert 1 <= folder.peak_chains <= max_peak
    assert folder.duplicates == 0
    results = _finalized(folder, store)
    assert results == _serial_results(store)


def test_carry_folder_duplicates_are_rejected_bit_identically(store):
    folder = _fold_in_order(store, [5, 0, 3, 1, 4, 2], duplicate=True)
    assert folder.duplicates == 6
    assert _finalized(folder, store) == _serial_results(store)


def test_carry_folder_guards():
    from repro.core.distributed import CarryFolder

    with pytest.raises(ValueError, match="at least 1"):
        CarryFolder(0)
    folder = CarryFolder(2)
    with pytest.raises(ValueError, match="out of range"):
        folder.add(2, [])
    folder.add(0, [])
    with pytest.raises(RuntimeError, match="holds 1 of 2"):
        folder.result()


# --------------------------------------------------------------------- #
# Debris accounting, hints, speculation
# --------------------------------------------------------------------- #
def test_undecodable_result_blobs_counted_and_warned(store, tmp_path, expected):
    """A garbage blob under results/ is dropped, but with a trace: one
    RuntimeWarning per run and a stats["debris_blobs"] count."""
    from repro.core.distributed import RUN_MANIFEST, run_worker
    from repro.events.transport import open_transport

    queue_dir = tmp_path / "debris-queue"
    engine = DistributedEngine(
        queue=queue_dir, workers=0, poll_interval=0.05,
        lease_timeout=60.0, run_timeout=120.0,
    )

    def inject_then_work():
        # Wait for the coordinator to create the queue, drop garbage in
        # front of any real result, then serve the run from this thread.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if queue_dir.exists():
                transport = open_transport(queue_dir)
                if transport.blob_exists(RUN_MANIFEST):
                    break
            time.sleep(0.01)
        transport.write_blob("results/rb-garbage-00001", b"not a result batch")
        run_worker(queue_dir, poll_interval=0.05, echo=None)

    worker = threading.Thread(target=inject_then_work, daemon=True)
    worker.start()
    with pytest.warns(RuntimeWarning, match="debris"):
        report = analyze_stream(store, engine=engine, jobs=2)
    worker.join(timeout=60)
    assert _findings(report) == expected
    assert engine.stats["debris_blobs"] == 1
    # The garbage blob did not consume any task: nothing was requeued.
    assert engine.stats["requeued"] == 0


def test_hints_blob_schema(store, tmp_path, expected):
    """The hints blob is valid JSON with the documented schema and mirrors
    stats["hints"] exactly (an external fleet manager's contract)."""
    import json

    queue_dir = tmp_path / "hints-queue"
    engine = DistributedEngine(
        queue=queue_dir, workers=2, worker_mode="thread",
        poll_interval=0.02, hints_interval=0.05, run_timeout=120.0,
    )
    report = analyze_stream(store, engine=engine, jobs=4)
    assert _findings(report) == expected
    hints = json.loads((queue_dir / "hints").read_bytes())
    assert hints == engine.stats["hints"]
    assert set(hints) == {
        "version", "seq", "tasks", "pending", "claimed", "completed",
        "requeued", "speculative_launches", "debris_blobs",
        "workers_observed", "claim_latency_seconds",
        "median_fold_interval_seconds", "suggested_worker_delta",
    }
    assert hints["version"] == 1
    assert hints["seq"] >= 1
    assert hints["tasks"] == 4
    # The final (forced) publish reflects the completed run.
    assert hints["completed"] == 4 and hints["pending"] == 0


def test_stalled_worker_finishes_via_speculation(store, tmp_path, expected):
    """A worker that heartbeats but never folds (the stall hook) is
    detected by the frozen fold position and its task re-published under
    the next attempt tag; the run completes well before lease_timeout
    without a single lease-expiry requeue."""
    from repro.core.distributed import STALL_ENV

    queue_dir = tmp_path / "stall-queue"
    lease = 30.0
    engine = DistributedEngine(
        queue=queue_dir, workers=0, poll_interval=0.05,
        lease_timeout=lease, max_attempts=3, run_timeout=120.0,
        min_stall=0.3, speculation_factor=2.0,
    )
    thread, out = _coordinate_in_thread(store, engine, jobs=6)
    stalled = subprocess.Popen(
        _worker_cmd(queue_dir), env=_worker_env(**{STALL_ENV: "1"})
    )
    healthy = None
    try:
        # Wait until the stalled worker holds its claim (it is the only
        # worker, so the first claim blob is necessarily its own).
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if queue_dir.exists() and list((queue_dir / "claims").glob("*")):
                break
            time.sleep(0.01)
        else:
            pytest.fail("stalled worker never claimed a task")
        stall_started = time.monotonic()
        healthy = subprocess.Popen(_worker_cmd(queue_dir), env=_worker_env())
        thread.join(timeout=90)
        elapsed = time.monotonic() - stall_started
        assert not thread.is_alive(), "coordinator did not finish"
        assert "report" in out, out.get("error")
        assert _findings(out["report"]) == expected
        # Speculation beat the lease: the stalled task was re-published
        # early and the duplicate attempt finished the run.
        assert engine.stats["speculative_launches"] >= 1
        assert engine.stats["requeued"] == 0
        assert elapsed < lease * 0.75
        assert healthy.wait(timeout=60) == 0
    finally:
        for proc in (stalled, healthy):
            if proc is not None and proc.poll() is None:
                proc.kill()
