"""Property-based tests for the detectors over randomly generated traces.

A random but *well-formed* mapping history is generated (alloc → transfers →
kernels → delete, per variable, per device), and structural invariants of the
detector outputs are checked against brute-force oracles where feasible.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.core.analysis import analyze_trace
from repro.core.detectors.duplicates import count_redundant_transfers, find_duplicate_transfers
from repro.core.detectors.repeated_allocs import find_repeated_allocations
from repro.core.detectors.roundtrips import count_round_trips, find_round_trips
from repro.core.detectors.unused_allocs import find_unused_allocations
from repro.core.detectors.unused_transfers import find_unused_transfers

from tests.conftest import TraceBuilder

# One step of a variable's history: which operation happens next.
_STEP = st.sampled_from(["h2d", "d2h", "kernel", "remap", "idle"])


@st.composite
def mapping_traces(draw):
    """Generate a well-formed single-device trace of mapping activity."""
    num_vars = draw(st.integers(min_value=1, max_value=4))
    steps = draw(st.lists(st.tuples(st.integers(0, num_vars - 1), _STEP),
                          min_size=1, max_size=40))
    hash_pool = draw(st.lists(st.integers(1, 6), min_size=1, max_size=6))

    b = TraceBuilder()
    mapped: dict[int, int] = {}  # var -> device addr
    next_addr = 0xA000
    for var, step in steps:
        host_addr = 0x100 + var * 0x10
        if step == "kernel":
            b.kernel()
            continue
        if step == "idle":
            b.idle(1e-5)
            continue
        if var not in mapped:
            mapped[var] = next_addr
            next_addr += 0x100
            b.alloc(host_addr, mapped[var])
        content = hash_pool[(var + len(b.trace.data_op_events)) % len(hash_pool)]
        if step == "h2d":
            b.h2d(host_addr, mapped[var], content_hash=content)
        elif step == "d2h":
            b.d2h(host_addr, mapped[var], content_hash=content)
        elif step == "remap":
            b.delete(host_addr, mapped[var])
            b.alloc(host_addr, mapped[var])
    for var, addr in mapped.items():
        b.delete(0x100 + var * 0x10, addr)
    return b.build()


@settings(max_examples=60, deadline=None)
@given(mapping_traces())
def test_duplicate_counts_match_bruteforce_oracle(trace):
    groups = find_duplicate_transfers(trace.data_op_events)
    # Oracle: for every (hash, destination) pair with n receipts, n-1 are redundant.
    receipts = Counter(
        (e.content_hash, e.dest_device_num) for e in trace.data_op_events if e.is_transfer
    )
    expected = sum(n - 1 for n in receipts.values() if n >= 2)
    assert count_redundant_transfers(groups) == expected
    for group in groups:
        assert group.num_transfers >= 2
        hashes = {e.content_hash for e in group.events}
        destinations = {e.dest_device_num for e in group.events}
        assert hashes == {group.content_hash}
        assert destinations == {group.dest_device_num}


@settings(max_examples=60, deadline=None)
@given(mapping_traces())
def test_round_trip_invariants(trace):
    groups = find_round_trips(trace.data_op_events)
    transfers = [e for e in trace.data_op_events if e.is_transfer]
    assert count_round_trips(groups) <= len(transfers)
    for group in groups:
        for trip in group.trips:
            # The two legs carry the same payload and the return leg arrives
            # at the original sender after the outbound leg completed.
            assert trip.tx_event.content_hash == trip.rx_event.content_hash
            assert trip.rx_event.dest_device_num == trip.tx_event.src_device_num
            assert trip.rx_event.start_time >= trip.tx_event.end_time


@settings(max_examples=60, deadline=None)
@given(mapping_traces())
def test_repeated_allocation_invariants(trace):
    groups = find_repeated_allocations(trace.data_op_events)
    for group in groups:
        assert group.num_allocations >= 2
        for pair in group.allocations:
            assert pair.host_addr == group.host_addr
            assert pair.nbytes == group.nbytes
            assert pair.delete_event is not None


@settings(max_examples=60, deadline=None)
@given(mapping_traces())
def test_unused_findings_reference_trace_events(trace):
    unused_allocs = find_unused_allocations(trace.target_events, trace.data_op_events, 1)
    unused_txs = find_unused_transfers(trace.target_events, trace.data_op_events, 1)
    all_seqs = {e.seq for e in trace.data_op_events}
    kernel_spans = [(k.start_time, k.end_time) for k in trace.kernel_events()]

    for finding in unused_allocs:
        start, end = finding.pair.lifetime(trace.end_time)
        # Oracle: the allocation's lifetime really does avoid every kernel.
        assert all(ke < start or ks > end for ks, ke in kernel_spans)

    for finding in unused_txs:
        assert finding.event.seq in all_seqs
        assert finding.event.dest_device_num == 0


@settings(max_examples=40, deadline=None)
@given(mapping_traces())
def test_analysis_is_deterministic_and_bounded(trace):
    first = analyze_trace(trace)
    second = analyze_trace(trace)
    assert first.counts == second.counts
    potential = first.potential
    # Removing operations can never save more time than the program spent.
    assert 0.0 <= potential.predicted_time_saved <= trace.runtime + 1e-12
    assert potential.predicted_speedup >= 1.0
    assert potential.predicted_ops_saved == len(potential.removable_event_seqs)
    assert potential.removable_event_seqs <= {e.seq for e in trace.data_op_events}
