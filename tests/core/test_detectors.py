"""Unit tests for the five detection algorithms (Section 5).

The scenarios mirror the paper's own examples: Listing 1 (duplicate
transfers), Listing 2 (round trips + repeated allocations), and the unused
mapping definitions of Section 4.4.
"""

import pytest

from repro.core.detectors.duplicates import count_redundant_transfers, find_duplicate_transfers
from repro.core.detectors.repeated_allocs import (
    count_redundant_allocations,
    find_repeated_allocations,
)
from repro.core.detectors.roundtrips import count_round_trips, find_round_trips
from repro.core.detectors.unused_allocs import find_unused_allocations
from repro.core.detectors.unused_transfers import find_unused_transfers

from tests.conftest import TraceBuilder


class TestDuplicateTransfers:
    def test_no_duplicates_in_distinct_payloads(self):
        b = TraceBuilder()
        b.h2d(0x1, 0xA, content_hash=1)
        b.h2d(0x2, 0xB, content_hash=2)
        assert find_duplicate_transfers(b.build().data_op_events) == []

    def test_listing1_duplicate_detected(self):
        # Listing 1: array `a` transferred before each of two target regions.
        b = TraceBuilder()
        b.h2d(0x1, 0xA, content_hash=7)
        b.kernel()
        b.h2d(0x1, 0xB, content_hash=7)
        b.kernel()
        groups = find_duplicate_transfers(b.build().data_op_events)
        assert len(groups) == 1
        assert groups[0].num_redundant == 1
        assert count_redundant_transfers(groups) == 1

    def test_same_hash_different_destinations_not_grouped(self):
        b = TraceBuilder(num_devices=2)
        b.h2d(0x1, 0xA, content_hash=7, device=0)
        b.h2d(0x1, 0xB, content_hash=7, device=1)
        assert find_duplicate_transfers(b.build().data_op_events) == []

    def test_host_as_receiver_counts(self):
        b = TraceBuilder()
        b.d2h(0x1, 0xA, content_hash=9)
        b.d2h(0x1, 0xA, content_hash=9)
        groups = find_duplicate_transfers(b.build().data_op_events)
        assert len(groups) == 1
        assert groups[0].dest_device_num == b.host

    def test_min_bytes_filter(self):
        b = TraceBuilder()
        b.h2d(0x1, 0xA, content_hash=7, nbytes=8)
        b.h2d(0x1, 0xB, content_hash=7, nbytes=8)
        events = b.build().data_op_events
        assert find_duplicate_transfers(events, min_bytes=16) == []
        assert len(find_duplicate_transfers(events, min_bytes=0)) == 1

    def test_missing_hash_rejected(self):
        b = TraceBuilder()
        event = b.h2d(0x1, 0xA, content_hash=7)
        object.__setattr__(event, "content_hash", None)
        with pytest.raises(ValueError):
            find_duplicate_transfers(b.build().data_op_events)

    def test_wasted_time_excludes_first_receipt(self):
        b = TraceBuilder()
        b.h2d(0x1, 0xA, content_hash=7, duration=1e-3)
        b.h2d(0x1, 0xB, content_hash=7, duration=2e-3)
        groups = find_duplicate_transfers(b.build().data_op_events)
        assert groups[0].wasted_time == pytest.approx(2e-3)


class TestRoundTrips:
    def test_listing2_round_trips(self):
        # Listing 2: a kernel in a loop with an implicit tofrom mapping; the
        # host re-sends the unmodified intermediate result each iteration.
        b = TraceBuilder()
        hashes = [10, 11, 12, 13]
        for i in range(3):
            b.h2d(0x1, 0xA, content_hash=hashes[i])
            b.kernel()
            b.d2h(0x1, 0xA, content_hash=hashes[i + 1])
        groups = find_round_trips(b.build().data_op_events)
        # Each device-to-host result is sent back unchanged the next iteration.
        assert count_round_trips(groups) == 2

    def test_unmodified_tofrom_is_one_trip(self):
        # rsbench/xsbench: an input struct mapped tofrom, never modified.
        b = TraceBuilder()
        b.h2d(0x1, 0xA, content_hash=5)
        b.kernel()
        b.d2h(0x1, 0xA, content_hash=5)
        groups = find_round_trips(b.build().data_op_events)
        assert count_round_trips(groups) == 1
        trip = groups[0].trips[0]
        assert trip.tx_event.kind.value == "transfer_to_device"
        assert trip.rx_event.kind.value == "transfer_from_device"

    def test_modified_data_is_not_a_round_trip(self):
        b = TraceBuilder()
        b.h2d(0x1, 0xA, content_hash=5)
        b.kernel()
        b.d2h(0x1, 0xA, content_hash=6)
        assert find_round_trips(b.build().data_op_events) == []

    def test_every_outbound_send_matches_a_single_return(self):
        # Algorithm 2 deliberately lets one return receipt complete the trip
        # of every earlier outbound send of the same payload: this is what
        # makes the bfs termination flag report 10 round trips in Table 1
        # even though the flag only travels back once with that value.
        b = TraceBuilder()
        b.h2d(0x1, 0xA, content_hash=5)
        b.h2d(0x2, 0xB, content_hash=5)  # second send of the same payload
        b.kernel()
        b.d2h(0x1, 0xA, content_hash=5)  # only one return
        groups = find_round_trips(b.build().data_op_events)
        assert count_round_trips(groups) == 2

    def test_outbound_receipt_not_reused_as_completion(self):
        # The dequeue step of Algorithm 2: after a send completes a trip, its
        # own receipt at the destination cannot also serve as the completion
        # of a later transfer travelling the other way.
        b = TraceBuilder()
        b.h2d(0x1, 0xA, content_hash=5)   # host -> device
        b.kernel()
        b.d2h(0x1, 0xA, content_hash=5)   # device -> host (trip 1 completes)
        b.h2d(0x1, 0xA, content_hash=5)   # host -> device again (trip 2 completes)
        groups = find_round_trips(b.build().data_op_events)
        assert count_round_trips(groups) == 2

    def test_grouping_by_devices(self):
        b = TraceBuilder(num_devices=2)
        for device in (0, 1):
            b.h2d(0x1, 0xA + device, content_hash=5 + device, device=device)
            b.kernel(device=device)
            b.d2h(0x1, 0xA + device, content_hash=5 + device, device=device)
        groups = find_round_trips(b.build().data_op_events)
        assert len(groups) == 2
        assert {g.dest_device_num for g in groups} == {0, 1}


class TestRepeatedAllocations:
    def test_single_allocation_not_reported(self):
        b = TraceBuilder()
        b.alloc(0x1, 0xA)
        b.kernel()
        b.delete(0x1, 0xA)
        assert find_repeated_allocations(b.build().data_op_events) == []

    def test_per_kernel_reallocation_detected(self):
        b = TraceBuilder()
        for _ in range(3):
            b.alloc(0x1, 0xA, nbytes=256)
            b.kernel()
            b.delete(0x1, 0xA, nbytes=256)
        groups = find_repeated_allocations(b.build().data_op_events)
        assert len(groups) == 1
        assert groups[0].num_allocations == 3
        assert count_redundant_allocations(groups) == 2

    def test_size_is_part_of_the_key(self):
        # Section 5.3: the allocation size disambiguates address reuse.
        b = TraceBuilder()
        b.alloc(0x1, 0xA, nbytes=256)
        b.kernel()
        b.delete(0x1, 0xA, nbytes=256)
        b.alloc(0x1, 0xA, nbytes=512)
        b.kernel()
        b.delete(0x1, 0xA, nbytes=512)
        assert find_repeated_allocations(b.build().data_op_events) == []

    def test_live_allocation_excluded_by_default(self):
        b = TraceBuilder()
        b.alloc(0x1, 0xA)
        b.kernel()
        b.delete(0x1, 0xA)
        b.alloc(0x1, 0xA)  # still live at program end
        events = b.build().data_op_events
        assert find_repeated_allocations(events) == []
        relaxed = find_repeated_allocations(events, require_deletion=False)
        assert len(relaxed) == 1

    def test_removable_events_keep_first_alloc_and_last_delete(self):
        b = TraceBuilder()
        allocs, deletes = [], []
        for _ in range(3):
            allocs.append(b.alloc(0x1, 0xA))
            b.kernel()
            deletes.append(b.delete(0x1, 0xA))
        groups = find_repeated_allocations(b.build().data_op_events)
        removable = {e.seq for e in groups[0].removable_events()}
        assert allocs[0].seq not in removable
        assert deletes[-1].seq not in removable
        assert {allocs[1].seq, allocs[2].seq, deletes[0].seq, deletes[1].seq} <= removable


class TestUnusedAllocations:
    def test_allocation_overlapping_kernel_is_used(self):
        b = TraceBuilder()
        b.alloc(0x1, 0xA)
        b.kernel()
        b.delete(0x1, 0xA)
        trace = b.build()
        assert find_unused_allocations(trace.target_events, trace.data_op_events, 1) == []

    def test_allocation_between_kernels_is_unused(self):
        b = TraceBuilder()
        b.kernel()
        b.idle(1e-6)
        b.alloc(0x1, 0xA)
        b.delete(0x1, 0xA)
        b.idle(1e-6)
        b.kernel()
        trace = b.build()
        unused = find_unused_allocations(trace.target_events, trace.data_op_events, 1)
        assert len(unused) == 1

    def test_allocation_after_last_kernel_is_unused(self):
        b = TraceBuilder()
        b.kernel()
        b.idle(1e-6)
        b.alloc(0x1, 0xA)
        b.delete(0x1, 0xA)
        trace = b.build()
        assert len(find_unused_allocations(trace.target_events, trace.data_op_events, 1)) == 1

    def test_never_deleted_allocation_uses_trace_end(self):
        b = TraceBuilder()
        b.alloc(0x1, 0xA)
        b.kernel()
        trace = b.build()
        assert find_unused_allocations(trace.target_events, trace.data_op_events, 1) == []

    def test_per_device_separation(self):
        b = TraceBuilder(num_devices=2)
        b.kernel(device=0)
        b.idle(1e-6)
        # The allocation on device 1 never overlaps a kernel on device 1.
        b.alloc(0x1, 0xA, device=1)
        b.delete(0x1, 0xA, device=1)
        b.idle(1e-6)
        b.kernel(device=0)
        trace = b.build()
        unused = find_unused_allocations(trace.target_events, trace.data_op_events, 2)
        assert len(unused) == 1
        assert unused[0].device_num == 1


class TestUnusedTransfers:
    def test_transfer_consumed_by_kernel_is_used(self):
        b = TraceBuilder()
        b.h2d(0x1, 0xA, content_hash=1)
        b.kernel()
        trace = b.build()
        assert find_unused_transfers(trace.target_events, trace.data_op_events, 1) == []

    def test_overwritten_transfer_is_unused(self):
        b = TraceBuilder()
        first = b.h2d(0x1, 0xA, content_hash=1)
        b.h2d(0x1, 0xA, content_hash=2)  # overwrites before any kernel
        b.kernel()
        trace = b.build()
        unused = find_unused_transfers(trace.target_events, trace.data_op_events, 1)
        assert [u.event.seq for u in unused] == [first.seq]
        assert unused[0].reason == "overwritten"

    def test_transfer_after_last_kernel_is_unused(self):
        b = TraceBuilder()
        b.kernel()
        b.idle(1e-6)
        b.h2d(0x1, 0xA, content_hash=1)
        trace = b.build()
        unused = find_unused_transfers(trace.target_events, trace.data_op_events, 1)
        assert len(unused) == 1
        assert unused[0].reason == "after_last_kernel"

    def test_kernel_between_transfers_clears_candidates(self):
        b = TraceBuilder()
        b.h2d(0x1, 0xA, content_hash=1)
        b.kernel()
        b.h2d(0x1, 0xA, content_hash=2)
        b.kernel()
        trace = b.build()
        assert find_unused_transfers(trace.target_events, trace.data_op_events, 1) == []

    def test_transfers_to_host_ignored(self):
        b = TraceBuilder()
        b.kernel()
        b.idle(1e-6)
        b.d2h(0x1, 0xA, content_hash=1)
        b.d2h(0x1, 0xA, content_hash=2)
        trace = b.build()
        assert find_unused_transfers(trace.target_events, trace.data_op_events, 1) == []

    def test_different_host_addresses_do_not_overwrite(self):
        b = TraceBuilder()
        b.h2d(0x1, 0xA, content_hash=1)
        b.h2d(0x2, 0xB, content_hash=2)
        b.kernel()
        trace = b.build()
        assert find_unused_transfers(trace.target_events, trace.data_op_events, 1) == []
