"""Warm worker pool and shared-shard-cache lifecycle tests.

The warm pool's contract has two halves.  Performance: a
``keep_pool=True`` engine spawns each worker exactly once and keeps
stores open and shards published across runs, which ``ProcessEngine.stats``
makes observable (``spawn_count``, ``pool_reuse``, ``decode_count``,
``cache_hits``).  Safety: shared-memory segments belong to the engine
that owns the cache, never to the workers — so segments must be gone
from ``/dev/shm`` after a clean shutdown, after an injected worker crash
(``OMPDATAPERF_WORKER_CRASH_AFTER_CLAIM``), and after a
``KeyboardInterrupt`` in the parent, with no help from the crashed
party.
"""

from __future__ import annotations

import os

import pytest

from repro.core import engine as engine_mod
from repro.core.analysis import analyze_stream, analyze_trace
from repro.core.distributed import CRASH_ENV
from repro.core.engine import ProcessEngine
from repro.events.shardcache import SharedShardCache, residual_segments
from repro.events.store import shard_trace
from repro.events.synth import make_synthetic_columnar_trace


@pytest.fixture(scope="module")
def trace():
    return make_synthetic_columnar_trace(2400)


@pytest.fixture(scope="module")
def store(trace, tmp_path_factory):
    # Pinned to the legacy npz format: these tests observe the shared
    # cache's decode-once contract, which only applies to shards that
    # need decoding.  Flat .odpf shards bypass the cache by design (see
    # test_odpf_store_folds_with_zero_decodes_and_no_cache).
    path = tmp_path_factory.mktemp("pool-store") / "trace.store"
    return shard_trace(trace, path, shard_events=256, shard_format="npz")


@pytest.fixture(scope="module")
def odpf_store(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("pool-store-odpf") / "trace.store"
    return shard_trace(trace, path, shard_events=256)


def _findings(report):
    return (
        report.counts,
        report.duplicate_groups,
        report.round_trip_groups,
        report.repeated_alloc_groups,
        report.unused_allocations,
        report.unused_transfers,
        report.potential,
    )


def test_warm_pool_reuses_workers_across_runs(trace, store):
    expected = _findings(analyze_trace(trace))
    with ProcessEngine(keep_pool=True) as eng:
        assert _findings(analyze_stream(store, engine=eng, jobs=2)) == expected
        first = dict(eng.stats)
        assert _findings(analyze_stream(store, engine=eng, jobs=2)) == expected
        second = dict(eng.stats)

    # Workers spawned exactly once, over both runs.
    assert first["spawn_count"] == 2
    assert second["spawn_count"] == 2
    assert second["spawn_seconds"] == 0.0
    # Oversubscription makes reuse visible within a single run already…
    assert first["tasks"] > first["workers"]
    assert first["pool_reuse"] > 0
    # …and the second run runs entirely on warm workers with every shard
    # already published to the shared cache: no opens, no decodes.
    assert second["pool_reuse"] >= second["tasks"]
    assert second["open_seconds"] == 0.0
    assert second["decode_count"] == 0
    assert second["cache_hits"] > 0
    assert second["overhead_seconds"] == 0.0


def test_odpf_store_folds_with_zero_decodes_and_no_cache(trace, odpf_store):
    # Flat .odpf shards on a local store are mmapped in place: no decode
    # ever happens (first run included), and nothing is published to the
    # shared cache — the store file is its own shared payload.
    expected = _findings(analyze_trace(trace))
    with ProcessEngine(keep_pool=True) as eng:
        assert _findings(analyze_stream(odpf_store, engine=eng, jobs=2)) == expected
        first = dict(eng.stats)
        assert _findings(analyze_stream(odpf_store, engine=eng, jobs=2)) == expected
        second = dict(eng.stats)
    for stats in (first, second):
        assert stats["decode_count"] == 0
        assert stats["decode_seconds"] == 0.0
        assert stats["cache_hits"] == 0
        assert stats["map_count"] > 0
    assert residual_segments() == []


def test_stats_shape_and_overhead_accounting(store):
    eng = ProcessEngine()
    analyze_stream(store, engine=eng, jobs=2)
    stats = eng.stats
    assert set(stats) == {
        "spawn_count",
        "spawn_seconds",
        "tasks",
        "workers",
        "pool_reuse",
        "open_seconds",
        "decode_seconds",
        "decode_count",
        "cache_hits",
        "map_seconds",
        "map_count",
        "fold_seconds",
        "overhead_seconds",
        "overhead_per_task",
    }
    assert stats["spawn_count"] == 2
    assert stats["overhead_seconds"] == pytest.approx(
        stats["spawn_seconds"]
        + stats["open_seconds"]
        + stats["decode_seconds"]
        + stats["map_seconds"]
    )
    assert stats["overhead_per_task"] == pytest.approx(
        stats["overhead_seconds"] / stats["tasks"]
    )


def test_jobs1_populates_the_same_overhead_breakdown(store, odpf_store):
    # jobs == 1 degrades to a serial run but must still report the full
    # stats shape (the engine benchmark records it per worker count).
    eng2 = ProcessEngine()
    analyze_stream(store, engine=eng2, jobs=2)
    shape = set(eng2.stats)

    eng = ProcessEngine()
    analyze_stream(store, engine=eng, jobs=1)
    stats = eng.stats
    assert set(stats) == shape
    assert stats["tasks"] == 1
    assert stats["workers"] == 0
    assert stats["spawn_seconds"] == 0.0
    assert stats["decode_count"] > 0  # npz shards decode even serially

    eng = ProcessEngine()
    analyze_stream(odpf_store, engine=eng, jobs=1)
    assert set(eng.stats) == shape
    assert eng.stats["decode_seconds"] == 0.0
    assert eng.stats["decode_count"] == 0
    assert eng.stats["map_count"] > 0


def test_no_segments_survive_clean_shutdown(store):
    analyze_stream(store, engine="process", jobs=2)
    assert residual_segments() == []


def test_no_segments_survive_worker_crash(store, monkeypatch):
    # Workers read the crash hook at pool construction; each one
    # hard-exits after finishing its first task, *after* publishing
    # shared segments and before reporting the result — the window where
    # cleanup tied to worker exit would leak.
    monkeypatch.setenv(CRASH_ENV, "1")
    eng = ProcessEngine()
    with pytest.raises(RuntimeError, match="worker"):
        analyze_stream(store, engine=eng, jobs=2)
    assert residual_segments() == []


def test_no_segments_survive_keyboard_interrupt(store, monkeypatch):
    def interrupt(chains):
        raise KeyboardInterrupt

    monkeypatch.setattr(engine_mod, "_merge_partition_carries", interrupt)
    eng = ProcessEngine(keep_pool=True)
    with pytest.raises(KeyboardInterrupt):
        analyze_stream(store, engine=eng, jobs=2)
    # The run tears the engine down on ANY exception, keep_pool or not:
    # a stranded cache would leak /dev/shm for the process lifetime.
    assert residual_segments() == []


def test_mmap_backend_round_trip(trace, tmp_path):
    owner = SharedShardCache(backend="mmap")
    assert owner.attach(0) is None  # nothing published yet
    owner.publish(0, trace)
    worker = SharedShardCache.from_spec(owner.spec())
    seen = worker.attach(0)
    assert seen is not None
    assert seen.num_data_op_events == trace.num_data_op_events
    assert seen.num_target_events == trace.num_target_events
    worker.close()
    scratch = owner.scratch_dir
    owner.cleanup(1)
    assert not os.path.exists(scratch)


def test_broken_cache_degrades_to_private_decode(trace):
    cache = SharedShardCache(backend="off")
    cache.publish(0, trace)
    assert cache.attach(0) is None
    assert cache.publishes == 0


def test_fold_positions_track_worker_progress(store):
    """The per-worker shared counters advance with folded events: their
    total equals the events of every folded partition (the warm-pool
    analogue of the distributed beat's fold-position half)."""
    from repro.core.engine import PassSpec, partition_tasks
    from repro.core.detectors.duplicates import DuplicateTransferPass
    from repro.core.pool import WarmWorkerPool

    tasks = partition_tasks(store, 4)
    specs = (PassSpec(DuplicateTransferPass),)
    with WarmWorkerPool(2) as pool:
        assert pool.fold_positions() == [0, 0]
        jobs = [
            pool.submit_fold(store.transport.spec(), None, task, specs)
            for task in tasks
        ]
        pool.collect(jobs)
        positions = pool.fold_positions()
    assert len(positions) == 2
    assert sum(positions) == sum(task.num_events for task in tasks)
