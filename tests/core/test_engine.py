"""Tests for the pluggable execution engines and stream partitioning."""

from __future__ import annotations

import warnings

import pytest

from repro.core.analysis import analyze_stream, analyze_trace
from repro.core.detectors.duplicates import DuplicateTransferPass
from repro.core.detectors.unused_allocs import UnusedAllocationPass
from repro.core.engine import (
    ENGINES,
    PassSpec,
    ProcessEngine,
    SerialEngine,
    ThreadEngine,
    available_engines,
    process_engine_fallback_reason,
    resolve_engine,
)
from repro.events.columnar import ColumnarTrace
from repro.events.store import shard_trace
from repro.events.stream import (
    SlicedTraceStream,
    as_event_stream,
    partition_ranges,
    partition_stream,
)
from repro.events.synth import make_synthetic_columnar_trace
from repro.events.transport import FakeObjectStoreTransport


@pytest.fixture(scope="module")
def trace():
    return make_synthetic_columnar_trace(4_000)


@pytest.fixture(scope="module")
def store(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("engine-store") / "trace.store"
    return shard_trace(trace, path, shard_events=512)


def _findings(report):
    return (
        report.counts,
        report.duplicate_groups,
        report.round_trip_groups,
        report.repeated_alloc_groups,
        report.unused_allocations,
        report.unused_transfers,
        report.potential,
    )


# --------------------------------------------------------------------- #
# partition_ranges / partition_stream
# --------------------------------------------------------------------- #
def test_partition_ranges_balances_events():
    assert partition_ranges([10, 10, 10, 10], 2) == [(0, 2), (2, 4)]
    assert partition_ranges([10, 10, 10, 10], 4) == [(0, 1), (1, 2), (2, 3), (3, 4)]
    # A dominant batch takes a partition of its own.
    assert partition_ranges([100, 1, 1, 1], 2) == [(0, 1), (1, 4)]


def test_partition_ranges_edge_cases():
    assert partition_ranges([], 3) == []
    assert partition_ranges([5], 4) == [(0, 1)]
    assert partition_ranges([5, 5], 1) == [(0, 2)]
    # More workers than batches: one batch per partition, none empty.
    assert partition_ranges([3, 3], 8) == [(0, 1), (1, 2)]
    with pytest.raises(ValueError):
        partition_ranges([1, 2], 0)


def test_partition_ranges_cover_everything():
    counts = [7, 1, 1, 9, 2, 40, 3, 3, 5, 1]
    for n in range(1, 14):
        ranges = partition_ranges(counts, n)
        assert ranges[0][0] == 0 and ranges[-1][1] == len(counts)
        for (_, a_hi), (b_lo, _) in zip(ranges[:-1], ranges[1:]):
            assert a_hi == b_lo
        assert all(hi > lo for lo, hi in ranges)
        assert len(ranges) <= min(n, len(counts))


def test_partition_stream_offsets_and_events(store):
    parts = store.partitions(3)
    assert len(parts) == 3
    counts = store.batch_row_counts()
    offset = 0
    lo = 0
    for part in parts:
        assert part.lo == lo
        assert part.data_op_offset == offset
        batch_events = [
            batch.num_data_op_events + batch.num_target_events
            for batch in part.batches()
        ]
        assert sum(batch_events) == part.num_events
        offset += sum(do for do, _ in counts[part.lo : part.hi])
        lo = part.hi
    assert lo == store.num_shards
    assert sum(p.num_events for p in parts) == len(store)


def test_partition_stream_degrades_gracefully(trace, store):
    # n=1 and single-batch streams come back unsplit.
    assert partition_stream(store, 1) == [store]
    single = SlicedTraceStream(trace, shard_events=10**9)
    assert partition_stream(single, 4) == [single]
    # Streams without random access pass through too.
    class Opaque:
        num_devices = 1
        program_name = None
        total_runtime = None

        def batches(self):
            return iter(())

    opaque = Opaque()
    assert partition_stream(opaque, 4) == [opaque]


# --------------------------------------------------------------------- #
# Engines
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_engines_match_the_columnar_oracle(trace, store, engine, jobs):
    expected = _findings(analyze_trace(trace))
    report = analyze_stream(store, engine=engine, jobs=jobs)
    assert _findings(report) == expected


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_engines_on_in_memory_slices(trace, engine):
    """Thread/serial engines also partition the in-memory slicer."""
    stream = as_event_stream(trace, 512)
    if engine in ("process", "distributed"):
        # Both ship transport specs to their workers, so both demand a
        # real on-disk (or object-store) sharded store.
        with pytest.raises(TypeError, match="ShardedTraceStore"):
            analyze_stream(stream, engine=engine, jobs=2)
        return
    expected = _findings(analyze_trace(trace))
    assert _findings(analyze_stream(stream, engine=engine, jobs=3)) == expected


def test_more_jobs_than_shards(store):
    expected = _findings(analyze_stream(store))
    report = analyze_stream(store, engine="process", jobs=64)
    assert _findings(report) == expected


@pytest.mark.parametrize("destination", ["zip", "fake"])
def test_process_engine_over_non_local_transports(trace, tmp_path, destination):
    """Process workers reopen the store from its transport spec, so the
    shards may live in a zip archive or an object store, not only a
    directory — findings stay identical, and the finalize-side
    materialisation scans run on the worker pool either way."""
    target = tmp_path / "t.zip" if destination == "zip" else FakeObjectStoreTransport()
    store = shard_trace(trace, target, shard_events=512)
    expected = _findings(analyze_trace(trace))
    report = analyze_stream(store, engine="process", jobs=2)
    assert _findings(report) == expected


def test_thread_engine_over_object_store_transport(trace):
    remote = FakeObjectStoreTransport()
    store = shard_trace(trace, remote, shard_events=512)
    expected = _findings(analyze_trace(trace))
    assert _findings(analyze_stream(store, engine="thread", jobs=3)) == expected


# --------------------------------------------------------------------- #
# Graceful degradation of --engine process
# --------------------------------------------------------------------- #
def test_process_fallback_reason_on_single_core(monkeypatch):
    monkeypatch.setattr("repro.core.engine._usable_cores", lambda: 1)
    reason = process_engine_fallback_reason()
    assert reason is not None and "core" in reason
    monkeypatch.setattr("repro.core.engine._usable_cores", lambda: 8)
    assert process_engine_fallback_reason() is None
    assert process_engine_fallback_reason(jobs=1) is not None


def test_process_fallback_reason_without_start_methods(monkeypatch):
    monkeypatch.setattr("repro.core.engine._usable_cores", lambda: 8)
    monkeypatch.setattr(
        "repro.core.engine.multiprocessing.get_all_start_methods", lambda: []
    )
    reason = process_engine_fallback_reason()
    assert reason is not None and "start method" in reason


def test_resolve_engine_degrades_to_serial_with_warning(monkeypatch):
    monkeypatch.setattr("repro.core.engine._usable_cores", lambda: 1)
    with pytest.warns(RuntimeWarning, match="falling back to the serial engine"):
        engine = resolve_engine("process", jobs=4, degrade=True)
    assert isinstance(engine, SerialEngine)
    # Without degrade the caller gets exactly what it asked for (the
    # differential suites rely on testing the real process engine).
    assert isinstance(resolve_engine("process"), ProcessEngine)
    # A capable machine resolves process requests normally.
    monkeypatch.setattr("repro.core.engine._usable_cores", lambda: 8)
    assert isinstance(
        resolve_engine("process", jobs=4, degrade=True), ProcessEngine
    )


def test_engine_resolution():
    assert available_engines() == ["distributed", "process", "serial", "thread"]
    assert isinstance(resolve_engine("serial"), SerialEngine)
    assert isinstance(resolve_engine("thread"), ThreadEngine)
    assert isinstance(resolve_engine("process"), ProcessEngine)
    assert isinstance(resolve_engine(None), SerialEngine)
    custom = ThreadEngine()
    assert resolve_engine(custom) is custom
    with pytest.raises(ValueError, match="unknown execution engine"):
        resolve_engine("quantum")
    with pytest.raises(TypeError):
        resolve_engine(42)
    with pytest.raises(ValueError, match="unknown execution engine"):
        analyze_stream(as_event_stream(ColumnarTrace(num_devices=1)), engine="nope")


def test_jobs_validated(store):
    for engine in sorted(ENGINES):
        with pytest.raises(ValueError, match="jobs"):
            analyze_stream(store, engine=engine, jobs=0)


def test_pass_spec_builds_with_eager_flag():
    spec = PassSpec(DuplicateTransferPass, {"min_bytes": 16})
    eager = spec.build()
    deferred = spec.build(eager=False)
    assert eager.eager is True
    assert deferred.eager is False
    assert eager.min_bytes == deferred.min_bytes == 16
    # Specs are reusable: every build is a fresh single-use pass.
    assert eager is not spec.build()

    alloc_spec = PassSpec(UnusedAllocationPass, {"num_devices": 2})
    assert alloc_spec.build(eager=False).num_devices == 2


# --------------------------------------------------------------------- #
# EngineConfig (the unified engine spec surface)
# --------------------------------------------------------------------- #
def test_engine_config_parse_round_trip():
    from repro.core.engine import EngineConfig

    config = EngineConfig.parse(
        "distributed:claim_batch=4,lease_timeout=10,speculate=on"
    )
    assert config.name == "distributed"
    assert config.options == {
        "claim_batch": 4, "lease_timeout": 10.0, "speculate": True,
    }
    assert config.spec() == "distributed:claim_batch=4,lease_timeout=10.0,speculate=True"
    # A bare name has no options and round-trips to itself.
    assert EngineConfig.parse("serial") == EngineConfig("serial")
    assert EngineConfig.parse("serial").spec() == "serial"


def test_engine_config_bool_words():
    from repro.core.engine import EngineConfig

    for word, value in [
        ("on", True), ("off", False), ("true", True), ("false", False),
        ("yes", True), ("no", False), ("1", True), ("0", False),
    ]:
        config = EngineConfig.parse(f"distributed:speculate={word}")
        assert config.options["speculate"] is value, word
    with pytest.raises(ValueError, match="bad value"):
        EngineConfig.parse("distributed:speculate=maybe")


def test_engine_config_rejects_unknowns():
    from repro.core.engine import EngineConfig

    with pytest.raises(ValueError, match="unknown execution engine"):
        EngineConfig.parse("quantum:foo=1")
    with pytest.raises(ValueError, match="known options"):
        EngineConfig.parse("distributed:warp_factor=9")
    with pytest.raises(ValueError, match="key=value"):
        EngineConfig.parse("distributed:claim_batch")


def test_engine_config_build_and_resolve():
    from repro.core.distributed import DistributedEngine
    from repro.core.engine import EngineConfig

    engine = resolve_engine("distributed:claim_batch=3,speculate=off,min_stall=0.5")
    assert isinstance(engine, DistributedEngine)
    assert engine.claim_batch == 3
    assert engine.speculate is False
    assert engine.min_stall == 0.5
    # EngineConfig instances resolve too (what the CLI passes through).
    config = EngineConfig.parse("process:keep_pool=on,tasks_per_worker=2")
    built = resolve_engine(config)
    assert isinstance(built, ProcessEngine)
    assert built.keep_pool is True and built.tasks_per_worker == 2


def test_engine_config_option_tables_cover_constructors():
    """Every spec option must be a real constructor kwarg: building a
    config that sets every option must not raise."""
    import inspect

    from repro.core.engine import ENGINES, engine_config_options

    for name, engine_cls in ENGINES.items():
        params = inspect.signature(engine_cls.__init__).parameters
        for option in engine_config_options(name):
            assert option in params, f"{name}:{option}"


def test_deprecation_warnings_fire_once():
    from repro.core.engine import _DEPRECATION_WARNED, _warn_deprecated_once

    _DEPRECATION_WARNED.discard("test-key-once")
    with pytest.warns(DeprecationWarning, match="old shape"):
        _warn_deprecated_once("test-key-once", "old shape")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        _warn_deprecated_once("test-key-once", "old shape")
    assert caught == []
