"""Tests for the OMPT trace collector, overhead model, report and profiler."""

import numpy as np
import pytest

from repro.core.analysis import analyze_trace
from repro.core.collector import TraceCollector
from repro.core.overhead import OverheadModel, overhead_accumulation_rate, space_overhead_bytes
from repro.core.profiler import OMPDataPerf, run_uninstrumented
from repro.events.records import DataOpKind, TargetKind
from repro.omp.mapping import to, tofrom
from repro.omp.runtime import OffloadRuntime
from repro.ompt.interface import OmptInterface


def listing1_program(rt: OffloadRuntime) -> None:
    """The paper's Listing 1: array `a` mapped to two consecutive regions."""
    a = np.arange(256, dtype=np.float64)
    total = np.zeros(1)
    prod = np.ones(1)
    rt.target(maps=[to(a), tofrom(total)], reads=[a], writes=[total],
              kernel=lambda dev: dev[total].__setitem__(0, dev[a].sum()))
    rt.target(maps=[to(a), tofrom(prod)], reads=[a], writes=[prod],
              kernel=lambda dev: dev[prod].__setitem__(0, dev[a][:4].prod()))


class TestOverheadModel:
    def test_hash_rate_regimes(self):
        model = OverheadModel()
        assert model.hash_rate(1024) == model.hash_rate_cached
        assert model.hash_rate(model.llc_bytes + 1) == model.hash_rate_streaming

    def test_hash_time_monotone_in_size(self):
        model = OverheadModel()
        assert model.hash_time(1 << 20) < model.hash_time(1 << 26)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            OverheadModel(hash_rate_cached=0.0)
        with pytest.raises(ValueError):
            OverheadModel(per_event_seconds=-1.0)
        with pytest.raises(ValueError):
            OverheadModel().hash_time(-1)

    def test_space_overhead_formula(self):
        assert space_overhead_bytes(10, 5) == 10 * 72 + 5 * 24
        with pytest.raises(ValueError):
            space_overhead_bytes(-1, 0)


class TestCollector:
    def _run(self, collector: TraceCollector):
        ompt = OmptInterface()
        ompt.connect_tool(collector)
        rt = OffloadRuntime(ompt=ompt)
        listing1_program(rt)
        total = rt.finish()
        return collector.finish_trace(total_runtime=total, program_name="listing1"), rt

    def test_records_all_event_classes(self):
        collector = TraceCollector()
        trace, _ = self._run(collector)
        kinds = {e.kind for e in trace.data_op_events}
        assert DataOpKind.ALLOC in kinds
        assert DataOpKind.TRANSFER_TO_DEVICE in kinds
        assert DataOpKind.DELETE in kinds
        assert all(t.kind is TargetKind.TARGET for t in trace.target_events)
        assert len(trace.target_events) == 2

    def test_transfers_are_hashed(self):
        collector = TraceCollector()
        trace, _ = self._run(collector)
        for event in trace.transfers():
            assert event.content_hash is not None

    def test_identical_payloads_share_hash(self):
        collector = TraceCollector()
        trace, _ = self._run(collector)
        to_device = [e for e in trace.transfers_to_devices() if e.nbytes == 256 * 8]
        assert len(to_device) == 2
        assert to_device[0].content_hash == to_device[1].content_hash

    def test_overhead_charged_to_clock(self):
        collector = TraceCollector(overhead_model=OverheadModel())
        _, rt = self._run(collector)
        assert rt.clock.tool_overhead > 0.0

    def test_zero_overhead_mode(self):
        collector = TraceCollector(overhead_model=None)
        _, rt = self._run(collector)
        assert rt.clock.tool_overhead == 0.0

    def test_collision_audit_mode(self):
        collector = TraceCollector(audit_collisions=True)
        self._run(collector)
        assert collector.auditor is not None
        assert collector.auditor.observed == collector.hashed_payloads
        assert collector.auditor.is_collision_free()

    def test_finalize_flag(self):
        collector = TraceCollector()
        self._run(collector)
        assert collector.finalized

    def test_accumulation_rate(self):
        collector = TraceCollector()
        trace, _ = self._run(collector)
        assert overhead_accumulation_rate(trace) > 0.0


class TestProfiler:
    def test_profile_detects_listing1_issues(self):
        result = OMPDataPerf().profile(listing1_program, program_name="listing1")
        counts = result.analysis.counts
        assert counts.duplicate_transfers >= 1
        assert counts.repeated_allocations >= 1
        assert result.instrumented_runtime > 0.0
        assert result.tool_overhead > 0.0
        assert result.space_overhead_bytes == result.trace.space_overhead_bytes()

    def test_instrumented_runtime_exceeds_native(self):
        result = OMPDataPerf().profile(listing1_program)
        native = run_uninstrumented(listing1_program)
        assert result.instrumented_runtime > native
        assert result.native_runtime_estimate == pytest.approx(native, rel=0.05)

    def test_offline_analysis_of_saved_trace(self, tmp_path):
        result = OMPDataPerf().profile(listing1_program, program_name="listing1")
        path = tmp_path / "trace.json"
        result.trace.save(path)
        from repro.events.trace import Trace

        loaded = Trace.load(path)
        offline = OMPDataPerf().analyze(loaded)
        assert offline.counts == result.analysis.counts

    def test_report_rendering_contains_sections(self):
        result = OMPDataPerf().profile(listing1_program, program_name="listing1")
        text = result.render_report()
        assert "Duplicate Target Data Transfer Analysis" in text
        assert "Round-Trip Target Data Transfer Analysis" in text
        assert "Repeated Device Memory Allocation Analysis" in text
        assert "Optimization Potential" in text
        assert "predicted speedup" in text

    def test_source_attribution_in_report(self):
        result = OMPDataPerf().profile(listing1_program, program_name="listing1")
        # The duplicate finding should be attributed to this test file.
        assert "test_collector_and_profiler.py" in result.render_report()

    def test_analysis_without_debug_info_uses_raw_pointers(self):
        result = OMPDataPerf().profile(listing1_program, program_name="listing1")
        report = analyze_trace(result.trace, debug_info=None)
        assert "0x0000" in report.render() or "0x" in report.render()

    def test_multi_device_profiling(self):
        def program(rt: OffloadRuntime) -> None:
            a = np.arange(64, dtype=np.float64)
            for device in range(2):
                rt.target(maps=[to(a)], reads=[a], kernel=None, device_num=device)

        result = OMPDataPerf().profile(program, num_devices=2)
        assert result.trace.num_devices == 2
        devices_seen = {e.dest_device_num for e in result.trace.transfers_to_devices()}
        assert devices_seen == {0, 1}

    def test_multi_device_streaming_profile(self, tmp_path):
        # Bounded-memory ingest of a multi-device run: every shard was
        # written before the final device count was known, and validation
        # (validate=True default) must still accept the store.
        def program(rt: OffloadRuntime) -> None:
            a = np.arange(64, dtype=np.float64)
            for device in range(2):
                rt.target(maps=[to(a)], reads=[a], kernel=None, device_num=device)

        result = OMPDataPerf().profile_streaming(
            program, tmp_path / "multi.store", shard_events=2, num_devices=2
        )
        assert result.store.num_devices == 2
        assert result.store.num_shards > 1
        expected = OMPDataPerf().profile(program, num_devices=2)
        assert result.analysis.counts == expected.analysis.counts
        assert result.analysis.potential == expected.analysis.potential
