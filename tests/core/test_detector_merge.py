"""Targeted tests for the per-detector partition-merge contracts.

The execution engines fold disjoint contiguous shard ranges on independent
workers and combine the carries with ``StreamingPass.merge``.  These tests
pin the contracts down without any engine in the loop: a stream is folded
in two (or three) deferred-mode partition passes, merged, finalized, and
the findings must be identical to the sequential streaming fold — at every
possible cut point, and specifically at the boundary cases each contract
exists for (an allocation open across the cut, a round-trip leg split
across partitions, a duplicate key counted once on each side, an empty
partition, nested allocations spanning the cut).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.detectors._streaming import DeviceKernels
from repro.core.detectors.duplicates import (
    DuplicateTransferPass,
    find_duplicate_transfers_streaming,
)
from repro.core.detectors.repeated_allocs import (
    RepeatedAllocationPass,
    find_repeated_allocations_streaming,
)
from repro.core.detectors.roundtrips import (
    RoundTripPass,
    find_round_trips_streaming,
)
from repro.core.detectors.unused_allocs import (
    UnusedAllocationPass,
    find_unused_allocations_streaming,
)
from repro.core.detectors.unused_transfers import (
    UnusedTransferPass,
    find_unused_transfers_streaming,
)
from repro.events.columnar import ColumnarTrace
from repro.events.stream import as_event_stream

from tests.conftest import TraceBuilder


def _pass_builders(num_devices: int):
    return {
        "duplicates": DuplicateTransferPass,
        "roundtrips": RoundTripPass,
        "repeated": RepeatedAllocationPass,
        "unused_allocs": lambda: UnusedAllocationPass(num_devices),
        "unused_transfers": lambda: UnusedTransferPass(num_devices),
    }


def _sequential(stream, num_devices: int):
    return {
        "duplicates": find_duplicate_transfers_streaming(stream),
        "roundtrips": find_round_trips_streaming(stream),
        "repeated": find_repeated_allocations_streaming(stream),
        "unused_allocs": find_unused_allocations_streaming(stream, num_devices),
        "unused_transfers": find_unused_transfers_streaming(stream, num_devices),
    }


def _fold_partitioned(build, stream, cuts: tuple[int, ...]):
    """Fold one pass per partition (deferred mode), merge left to right."""
    batches = list(stream.batches())
    offsets = [0]
    for batch in batches:
        offsets.append(offsets[-1] + batch.num_data_op_events)
    bounds = [0, *cuts, len(batches)]
    partitions = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        pass_ = build()
        pass_.eager = False
        for index in range(lo, hi):
            pass_.fold(batches[index], offsets[index])
        partitions.append(pass_)
    head = partitions[0]
    for tail in partitions[1:]:
        head.merge(tail)
    return head.finalize(stream)


def _assert_partitioned_matches(trace, shard_events: int, cuts: tuple[int, ...]):
    ct = ColumnarTrace.from_trace(trace) if not isinstance(trace, ColumnarTrace) else trace
    stream = as_event_stream(ct, shard_events)
    num_devices = max(ct.num_devices, 1)
    expected = _sequential(stream, num_devices)
    for name, build in _pass_builders(num_devices).items():
        got = _fold_partitioned(build, stream, cuts)
        assert got == expected[name], (
            f"{name}: partitioned fold (cuts={cuts}, shard_events="
            f"{shard_events}) differs from the sequential streaming fold"
        )


def _rich_trace():
    """One trace that produces findings for all five detectors."""
    b = TraceBuilder(num_devices=2)
    b.alloc(0x100, 0xA000, device=0)
    b.h2d(0x100, 0xA000, content_hash=5, device=0)
    b.kernel(device=0)
    b.h2d(0x100, 0xA000, content_hash=5, device=0)      # duplicate transfer
    b.d2h(0x100, 0xA000, content_hash=5, device=0)      # round-trip return
    b.alloc(0x200, 0xB000, device=1)
    b.h2d(0x200, 0xB000, content_hash=7, device=1)
    b.h2d(0x200, 0xB000, content_hash=9, device=1)      # overwrites hash 7
    b.kernel(device=1)
    b.delete(0x200, 0xB000, device=1)
    b.alloc(0x200, 0xB000, device=1)                    # repeated mapping key
    b.delete(0x200, 0xB000, device=1)
    b.alloc(0x300, 0xC000, device=0)                    # kernel-free lifetime
    b.delete(0x300, 0xC000, device=0)
    b.h2d(0x100, 0xA000, content_hash=11, device=0)     # after the last kernel
    b.delete(0x100, 0xA000, device=0)
    return b.build()


def test_every_cut_matches_sequential():
    """Two-partition merge equals the sequential fold at every cut point."""
    trace = _rich_trace()
    for shard_events in (1, 3, 7, 50):
        num_batches = len(list(as_event_stream(
            ColumnarTrace.from_trace(trace), shard_events).batches()))
        for cut in range(num_batches + 1):
            _assert_partitioned_matches(trace, shard_events, (cut,))


def test_three_partition_chain_matches_sequential():
    trace = _rich_trace()
    stream = as_event_stream(ColumnarTrace.from_trace(trace), 2)
    num_batches = len(list(stream.batches()))
    assert num_batches >= 4
    third = num_batches // 3
    _assert_partitioned_matches(trace, 2, (third, 2 * third))


def test_empty_partition_merges_are_identity():
    """Merging a never-folded pass on either side changes nothing."""
    trace = _rich_trace()
    num_batches = len(list(as_event_stream(
        ColumnarTrace.from_trace(trace), 3).batches()))
    # cut 0: the first partition is empty; cut num_batches: the second is.
    _assert_partitioned_matches(trace, 3, (0,))
    _assert_partitioned_matches(trace, 3, (num_batches,))
    _assert_partitioned_matches(trace, 3, (0, num_batches))


def test_allocation_open_across_the_cut():
    """An alloc in partition A whose delete lands in partition B.

    Exercises the pairer's pending-delete stitching for both passes that
    pair allocations: the repeated-allocation group must still form, and
    the unused-allocation verdict must still consider the full lifetime.
    """
    b = TraceBuilder(num_devices=1)
    b.alloc(0x100, 0xA000, device=0)    # batch 0 (shard_events=2 => 1 batch/2 events)
    b.idle(1e-4)
    b.delete(0x100, 0xA000, device=0)   # pairs across any cut in between
    b.alloc(0x100, 0xA000, device=0)    # same (host, device, size) key again
    b.kernel(device=0)                  # overlaps the second lifetime only
    b.delete(0x100, 0xA000, device=0)
    trace = b.build()
    stream = as_event_stream(ColumnarTrace.from_trace(trace), 1)
    num_batches = len(list(stream.batches()))
    for cut in range(num_batches + 1):
        _assert_partitioned_matches(trace, 1, (cut,))
    # Sanity: the scenario really produces the boundary findings.
    assert len(find_repeated_allocations_streaming(stream)) == 1
    assert len(find_unused_allocations_streaming(stream, 1)) == 1


def test_nested_allocations_across_the_cut():
    """LIFO stitching when the same (device, address) is open twice."""
    b = TraceBuilder(num_devices=1)
    b.alloc(0x100, 0xA000, device=0)
    b.alloc(0x180, 0xA000, device=0)    # nested: same device address
    b.delete(0x180, 0xA000, device=0)   # must pop the inner allocation
    b.delete(0x100, 0xA000, device=0)
    b.alloc(0x100, 0xA000, device=0)    # repeat of the outer key
    b.delete(0x100, 0xA000, device=0)
    trace = b.build()
    stream = as_event_stream(ColumnarTrace.from_trace(trace), 1)
    num_batches = len(list(stream.batches()))
    for cut in range(num_batches + 1):
        _assert_partitioned_matches(trace, 1, (cut,))
    assert len(find_repeated_allocations_streaming(stream)) == 1


def test_round_trip_legs_split_across_partitions():
    """Outbound leg in partition A, return leg in partition B."""
    b = TraceBuilder(num_devices=1)
    b.alloc(0x100, 0xA000, device=0)
    b.h2d(0x100, 0xA000, content_hash=42, device=0)   # outbound
    b.kernel(device=0)
    b.d2h(0x100, 0xA000, content_hash=42, device=0)   # return, later batch
    b.delete(0x100, 0xA000, device=0)
    trace = b.build()
    stream = as_event_stream(ColumnarTrace.from_trace(trace), 1)
    num_batches = len(list(stream.batches()))
    for cut in range(num_batches + 1):
        _assert_partitioned_matches(trace, 1, (cut,))
    assert len(find_round_trips_streaming(stream)) == 1


def test_duplicate_singletons_promote_across_the_cut():
    """A (hash, device) key counted once on each side of the cut.

    Neither partition records members (both are below the group
    threshold); the merge must recover both retained rows from the key
    tables — the promotion half of the CompositeKeyCounter contract.
    """
    b = TraceBuilder(num_devices=1)
    b.alloc(0x100, 0xA000, device=0)
    b.h2d(0x100, 0xA000, content_hash=77, device=0)
    b.kernel(device=0)
    b.h2d(0x100, 0xA000, content_hash=77, device=0)
    b.kernel(device=0)
    b.delete(0x100, 0xA000, device=0)
    trace = b.build()
    stream = as_event_stream(ColumnarTrace.from_trace(trace), 2)
    groups = find_duplicate_transfers_streaming(stream)
    assert len(groups) == 1 and len(groups[0].events) == 2
    num_batches = len(list(stream.batches()))
    for cut in range(num_batches + 1):
        _assert_partitioned_matches(trace, 2, (cut,))


def test_unused_transfer_epoch_spans_the_cut():
    """Candidate staged in partition A, overwritten in partition B.

    The open epoch (surviving candidates, previous cursor) must splice
    across the merge for the overwrite to be detected; the trailing
    transfer lands after the last kernel and must classify as such even
    though its partition contains no kernel at all.
    """
    b = TraceBuilder(num_devices=1)
    b.alloc(0x100, 0xA000, device=0)
    b.kernel(device=0)
    b.idle(1e-5)                                     # clear of the kernel
    b.h2d(0x100, 0xA000, content_hash=1, device=0)   # candidate
    b.h2d(0x100, 0xA000, content_hash=2, device=0)   # overwrites it
    b.idle(1e-5)
    b.kernel(device=0)
    b.idle(1e-5)
    b.h2d(0x100, 0xA000, content_hash=3, device=0)   # after the last kernel
    b.delete(0x100, 0xA000, device=0)
    trace = b.build()
    stream = as_event_stream(ColumnarTrace.from_trace(trace), 1)
    findings = find_unused_transfers_streaming(stream, 1)
    assert sorted(f.reason for f in findings) == ["after_last_kernel", "overwritten"]
    num_batches = len(list(stream.batches()))
    for cut in range(num_batches + 1):
        _assert_partitioned_matches(trace, 1, (cut,))


def test_merge_rejects_eager_right_hand_side():
    """The absorbed pass must have deferred its classifications."""
    left = UnusedAllocationPass(1)
    right = UnusedAllocationPass(1)   # eager by default
    with pytest.raises(ValueError, match="eager=False"):
        left.merge(right)
    left = UnusedTransferPass(1)
    right = UnusedTransferPass(1)
    with pytest.raises(ValueError, match="eager=False"):
        left.merge(right)


def test_device_kernels_merge_rebases_running_max():
    """The later partition's cursor base lifts to the earlier maximum."""
    a = DeviceKernels()
    a.extend(np.array([0.0, 1.0]), np.array([10.0, 2.0]))   # runmax [10, 10]
    b = DeviceKernels()
    b.extend(np.array([3.0, 4.0]), np.array([5.0, 6.0]))    # local runmax [5, 6]
    a.merge(b)
    assert a.count == 4
    assert a.runmax.view().tolist() == [10.0, 10.0, 10.0, 10.0]
    assert a.last == 10.0

    c = DeviceKernels()
    c.extend(np.array([7.0]), np.array([20.0]))
    a.merge(c)
    assert a.runmax.view().tolist() == [10.0, 10.0, 10.0, 10.0, 20.0]
    assert a.last == 20.0

    empty = DeviceKernels()
    a.merge(empty)
    assert a.count == 5
    empty.merge(a)
    assert empty.count == 5 and empty.last == 20.0
