"""The fuzz harness: clean sweeps, failure reporting, seed reproduction.

The sweep itself is correctness infrastructure, so these tests check the
harness rather than the detectors: a small sweep over real transports and
engines comes back clean, an injected analyser defect is caught, recorded
in the JSON report, and annotated with the exact one-command reproduction,
and the CLI entry point wires the knobs through (including the
``OMPDATAPERF_FUZZ_SEED`` / ``OMPDATAPERF_FUZZ_CASES`` environment
defaults the nightly leg uses).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import fuzz
from repro.core.fuzz import (
    FuzzCase,
    derive_cases,
    diff_reports,
    repro_command,
    run_fuzz_sweep,
)

pytestmark = pytest.mark.slow


def test_case_derivation_is_deterministic_and_self_contained():
    sweep = derive_cases(100, 3, 5000)
    assert [c.seed for c in sweep] == [100, 101, 102]
    # Reproducing case i needs only its own seed: deriving a 1-case sweep
    # from that seed yields the identical case.
    assert derive_cases(101, 1, 5000)[0] == sweep[1]
    assert FuzzCase.derive(101, 5000) == sweep[1]


def test_small_sweep_is_clean(tmp_path):
    report = run_fuzz_sweep(
        seed=17,
        cases=1,
        max_events=1500,
        transports=("local", "fake-object-store"),
        engines=("serial", "thread"),
        report_path=tmp_path / "report.json",
        say=lambda _line: None,
    )
    assert report.ok
    assert report.combos_checked == 4
    saved = json.loads((tmp_path / "report.json").read_text())
    assert saved["num_failures"] == 0
    assert saved["combos_checked"] == 4
    assert saved["seed"] == 17


def test_injected_defect_is_caught_with_repro_command(tmp_path, monkeypatch):
    """Break one engine leg on purpose: the sweep must catch the mismatch
    and print the single command that replays the failing case."""
    real = fuzz.analyze_stream

    def broken(stream, *, engine="serial", jobs=1, **kwargs):
        report = real(stream, engine=engine, jobs=jobs, **kwargs)
        if engine == "thread":
            report.counts = type(report.counts)()  # zeroed: a wrong answer
        return report

    monkeypatch.setattr(fuzz, "analyze_stream", broken)
    lines: list[str] = []
    report = run_fuzz_sweep(
        seed=23,
        cases=1,
        max_events=1200,
        transports=("local",),
        engines=("serial", "thread"),
        report_path=tmp_path / "report.json",
        say=lines.append,
    )
    assert not report.ok
    (failure,) = [f for f in report.failures if f.engine == "thread"]
    assert failure.stage == "local:thread"
    assert "counts" in failure.message
    expected = repro_command(23, 1200, "local", "thread")
    assert failure.repro == expected
    assert "--seed 23" in expected and "--cases 1" in expected
    # The repro command is printed right next to the failure ...
    assert any(expected in line for line in lines)
    # ... and lands in the JSON artifact the nightly leg uploads.
    saved = json.loads((tmp_path / "report.json").read_text())
    assert saved["failures"][0]["repro"] == expected


def test_crash_in_a_leg_is_a_failure_not_an_abort(monkeypatch):
    def exploding(stream, *, engine="serial", jobs=1, **kwargs):
        raise RuntimeError("injected analyser crash")

    monkeypatch.setattr(fuzz, "analyze_stream", exploding)
    report = run_fuzz_sweep(
        seed=5,
        cases=1,
        max_events=800,
        transports=("local",),
        engines=("serial",),
        say=lambda _line: None,
    )
    # streaming leg + the one combo leg both fail; the sweep still returns.
    assert not report.ok
    assert all("injected analyser crash" in f.message for f in report.failures)


def test_diff_reports_spots_every_field():
    from repro.core.analysis import analyze_trace
    from repro.events.hostile import make_hostile_trace

    trace = make_hostile_trace(1000, seed=4)
    a = analyze_trace(trace)
    b = analyze_trace(trace)
    assert diff_reports(a, b) == []
    b.counts = type(b.counts)()
    assert "counts" in diff_reports(a, b)


def test_cli_fuzz_subcommand(tmp_path, capsys):
    rc = main([
        "fuzz",
        "--seed", "31",
        "--cases", "1",
        "--events", "1000",
        "--transports", "local",
        "--engines", "serial",
        "--report", str(tmp_path / "r.json"),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fuzz sweep OK" in out
    saved = json.loads((tmp_path / "r.json").read_text())
    assert saved["seed"] == 31
    assert saved["transports"] == ["local"]


def test_cli_fuzz_env_defaults(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv(fuzz.SEED_ENV, "77")
    monkeypatch.setenv(fuzz.CASES_ENV, "1")
    rc = main([
        "fuzz",
        "--events", "800",
        "--transports", "local",
        "--engines", "serial",
        "--report", str(tmp_path / "r.json"),
    ])
    assert rc == 0
    saved = json.loads((tmp_path / "r.json").read_text())
    assert saved["seed"] == 77
    assert saved["cases"] == 1


def test_s3_transport_joins_sweep_under_moto(monkeypatch):
    pytest.importorskip("boto3")
    moto = pytest.importorskip("moto")
    for var in ("AWS_ACCESS_KEY_ID", "AWS_SECRET_ACCESS_KEY"):
        monkeypatch.setenv(var, "testing")
    monkeypatch.setenv("AWS_DEFAULT_REGION", "us-east-1")
    monkeypatch.delenv("OMPDATAPERF_S3_ENDPOINT", raising=False)
    # The moto sentinel: include s3 but talk to the in-process mock (the
    # process engine is excluded — moto cannot cross a process boundary).
    monkeypatch.setenv(fuzz.S3_ENDPOINT_ENV, "moto")
    assert fuzz.default_transports()[-1] == "s3"
    with moto.mock_aws():
        report = run_fuzz_sweep(
            seed=13,
            cases=1,
            max_events=1200,
            transports=("s3",),
            engines=("serial", "distributed"),
            say=lambda _line: None,
        )
    assert report.ok
    assert report.combos_checked == 2
