"""Property tests for the compact binary carry codec.

The carry codec replaces pickle on every parallel-engine wire: the warm
pool's result queue and the distributed queue's result blobs both carry
``encode_carries`` payloads.  Correctness therefore means *bit-identical
findings*: for any partition cut, folding partitions, shipping the
carries through the codec, merging and finalizing must produce exactly
what the pickle round-trip (and the serial path) produces — for all five
detectors at once.  Hypothesis drives the cut points: shard size and
worker count together determine where the trace is split, which decides
what lives in each carry (open allocations, pending transfers, partial
key-counter tables, device cursors).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.analysis import analyze_stream
from repro.core.carrycodec import (
    CarryCodecError,
    decode_carries,
    decode_value,
    encode_carries,
    encode_value,
)
from repro.core.detectors.duplicates import DuplicateTransferPass
from repro.core.detectors.repeated_allocs import RepeatedAllocationPass
from repro.core.detectors.roundtrips import RoundTripPass
from repro.core.detectors.unused_allocs import UnusedAllocationPass
from repro.core.detectors.unused_transfers import UnusedTransferPass
from repro.core.engine import (
    PassSpec,
    _finalize_all,
    _fold_partition,
    _merge_partition_carries,
)
from repro.events.stream import as_event_stream, partition_stream
from repro.events.synth import make_synthetic_columnar_trace

TRACE = make_synthetic_columnar_trace(900)


def _pass_specs(stream) -> tuple[PassSpec, ...]:
    num_devices = max(stream.num_devices, 1)
    return (
        PassSpec(DuplicateTransferPass),
        PassSpec(RoundTripPass),
        PassSpec(RepeatedAllocationPass),
        PassSpec(UnusedAllocationPass, {"num_devices": num_devices}),
        PassSpec(UnusedTransferPass, {"num_devices": num_devices}),
    )


@settings(max_examples=30, deadline=None)
@given(
    shard_events=st.integers(min_value=1, max_value=250),
    workers=st.integers(min_value=2, max_value=5),
)
def test_codec_round_trip_matches_pickle_path(shard_events, workers):
    """encode → decode → merge → finalize == the pickle path, bit for bit."""
    stream = as_event_stream(TRACE, shard_events)
    specs = _pass_specs(stream)
    partitions = partition_stream(stream, workers)
    if len(partitions) <= 1:
        return  # nothing crosses a wire for single-partition cuts

    chains_pickle = []
    chains_codec = []
    for partition in partitions:
        passes = _fold_partition(specs, partition)
        chains_pickle.append(pickle.loads(pickle.dumps(passes)))
        payload = encode_carries(passes)
        # Encode stability: re-encoding a decoded carry reproduces the
        # exact payload (no hidden state leaks into the wire format).
        assert encode_carries(decode_carries(payload)) == payload
        chains_codec.append(decode_carries(payload))

    via_pickle = _finalize_all(_merge_partition_carries(chains_pickle), stream, 1)
    via_codec = _finalize_all(_merge_partition_carries(chains_codec), stream, 1)
    assert via_codec == via_pickle

    # And both equal the engine-independent serial analysis.
    report = analyze_stream(as_event_stream(TRACE, shard_events))
    serial = [
        report.duplicate_groups,
        report.round_trip_groups,
        report.repeated_alloc_groups,
        report.unused_allocations,
        report.unused_transfers,
    ]
    assert via_codec == serial


_SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=True, allow_infinity=True),
    st.text(max_size=40),
    st.binary(max_size=40),
)
_VALUES = st.recursive(
    _SCALARS,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.lists(children, max_size=5).map(tuple),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=25,
)


@settings(max_examples=200, deadline=None)
@given(_VALUES)
def test_value_round_trip_is_stable(value):
    """decode(encode(x)) re-encodes to the same bytes (NaN-safe equality)."""
    payload = encode_value(value)
    assert encode_value(decode_value(payload)) == payload


def test_numpy_values_round_trip_exactly():
    arr = np.arange(12, dtype=np.uint32).reshape(3, 4)
    out = decode_value(encode_value(arr))
    assert out.dtype == arr.dtype and out.shape == arr.shape
    assert (out == arr).all()
    assert out.flags.writeable  # carries are mutated by merge()

    empty = np.empty(0, dtype=np.float64)
    out = decode_value(encode_value(empty))
    assert out.dtype == empty.dtype and out.shape == (0,)

    scalar = np.float32(1.5)
    out = decode_value(encode_value(scalar))
    assert isinstance(out, np.float32) and out == scalar

    dtype = np.dtype("<i8")
    assert decode_value(encode_value(dtype)) == dtype


def test_codec_rejects_garbage():
    with pytest.raises(CarryCodecError):
        decode_carries(b"NOPE" + b"\x00" * 16)
    with pytest.raises(CarryCodecError):
        decode_value(encode_value(1) + b"\x00")  # trailing bytes
    with pytest.raises(CarryCodecError):
        encode_value(object())  # unregistered type never silently pickles
