"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_programs(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "bfs" in out and "tealeaf" in out and "bspline-vgh-omp" in out


def test_analyze_program(capsys):
    assert main(["hotspot", "--size", "small", "-q"]) == 0
    out = capsys.readouterr().out
    assert "DD=2" in out
    assert "Optimization Potential" in out


def test_analyze_fixed_variant(capsys):
    assert main(["rsbench", "--size", "small", "--variant", "fixed", "-q"]) == 0
    out = capsys.readouterr().out
    assert "RT=0" in out


def test_verbose_header_and_summary(capsys):
    assert main(["rsbench", "--size", "small", "-v"]) == 0
    out = capsys.readouterr().out
    assert "OMPT interface version" in out
    assert "trace summary" in out


def test_trace_output_file(tmp_path, capsys):
    path = tmp_path / "trace.json"
    assert main(["hotspot", "--size", "small", "-q", "--trace-out", str(path)]) == 0
    from repro.events.trace import Trace

    trace = Trace.load(path)
    assert len(trace.data_op_events) > 0


def test_collision_audit_flag(capsys):
    assert main(["hotspot", "--size", "small", "-q", "--audit-collisions"]) == 0
    assert "collision-free" in capsys.readouterr().out


def test_experiments_mode(capsys):
    assert main(["--experiments", "table6", "--quick"]) == 0
    assert "Table 6" in capsys.readouterr().out


def test_unknown_program_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["not-a-program"])


def test_unknown_size_rejected():
    with pytest.raises(SystemExit):
        main(["bfs", "--size", "gigantic"])


def test_unsupported_variant_rejected():
    with pytest.raises(SystemExit):
        main(["lud", "--variant", "fixed"])


def test_missing_program_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_parser_metadata():
    parser = build_parser()
    assert parser.prog == "ompdataperf"
