"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_programs(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "bfs" in out and "tealeaf" in out and "bspline-vgh-omp" in out


def test_analyze_program(capsys):
    assert main(["hotspot", "--size", "small", "-q"]) == 0
    out = capsys.readouterr().out
    assert "DD=2" in out
    assert "Optimization Potential" in out


def test_analyze_fixed_variant(capsys):
    assert main(["rsbench", "--size", "small", "--variant", "fixed", "-q"]) == 0
    out = capsys.readouterr().out
    assert "RT=0" in out


def test_verbose_header_and_summary(capsys):
    assert main(["rsbench", "--size", "small", "-v"]) == 0
    out = capsys.readouterr().out
    assert "OMPT interface version" in out
    assert "trace summary" in out


def test_trace_output_file(tmp_path, capsys):
    path = tmp_path / "trace.json"
    assert main(["hotspot", "--size", "small", "-q", "--trace-out", str(path)]) == 0
    from repro.events.trace import Trace

    trace = Trace.load(path)
    assert len(trace.data_op_events) > 0


def test_collision_audit_flag(capsys):
    assert main(["hotspot", "--size", "small", "-q", "--audit-collisions"]) == 0
    assert "collision-free" in capsys.readouterr().out


def test_experiments_mode(capsys):
    assert main(["--experiments", "table6", "--quick"]) == 0
    assert "Table 6" in capsys.readouterr().out


def test_experiments_parallel_jobs(capsys):
    assert main(["--experiments", "table5", "table6", "--quick", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "Table 5" in out and "Table 6" in out


def test_invalid_jobs_rejected():
    with pytest.raises(SystemExit):
        main(["--experiments", "table6", "--jobs", "0"])


def test_trace_subcommand_round_trip(tmp_path, capsys):
    json_path = tmp_path / "trace.json"
    assert main(["hotspot", "--size", "small", "-q", "--trace-out", str(json_path)]) == 0
    capsys.readouterr()

    npz_path = tmp_path / "trace.npz"
    back_path = tmp_path / "back.json"
    assert main(["trace", "convert", str(json_path), str(npz_path)]) == 0
    assert main(["trace", "convert", str(npz_path), str(back_path)]) == 0
    capsys.readouterr()

    import json

    original = json.loads(json_path.read_text(encoding="utf-8"))
    restored = json.loads(back_path.read_text(encoding="utf-8"))
    assert restored == original  # JSON -> binary columnar -> JSON is lossless


def test_trace_subcommand_binary_out_from_cli(tmp_path, capsys):
    npz_path = tmp_path / "trace.npz"
    assert main(["hotspot", "--size", "small", "-q", "--trace-out", str(npz_path)]) == 0
    capsys.readouterr()
    from repro.events.columnar import ColumnarTrace

    trace = ColumnarTrace.load_binary(npz_path)
    assert trace.num_data_op_events > 0


def test_trace_subcommand_info(tmp_path, capsys):
    json_path = tmp_path / "trace.json"
    assert main(["rsbench", "--size", "small", "-q", "--trace-out", str(json_path)]) == 0
    capsys.readouterr()
    assert main(["trace", "info", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "num_data_op_events" in out
    assert "rsbench" in out
    assert "data_op_kind.transfer_to_device:" in out
    assert "on_disk_bytes:" in out


def test_trace_shard_info_merge_round_trip(tmp_path, capsys):
    npz_path = tmp_path / "trace.npz"
    assert main(["hotspot", "--size", "small", "-q", "--trace-out", str(npz_path)]) == 0
    capsys.readouterr()

    store_path = tmp_path / "trace.store"
    assert main(["trace", "shard", str(npz_path), str(store_path),
                 "--shard-events", "4"]) == 0
    assert (store_path / "manifest.json").is_file()
    capsys.readouterr()

    # info on the store comes from the manifest (per-kind counts included).
    assert main(["trace", "info", str(store_path)]) == 0
    out = capsys.readouterr().out
    assert "num_shards:" in out
    assert "data_op_kind.alloc:" in out

    back_path = tmp_path / "back.npz"
    assert main(["trace", "merge", str(store_path), str(back_path)]) == 0
    from repro.events.columnar import ColumnarTrace

    original = ColumnarTrace.load_binary(npz_path)
    restored = ColumnarTrace.load_binary(back_path)
    assert restored.to_trace().to_dict() == original.to_trace().to_dict()


def test_trace_migrate_rewrites_npz_store_to_odpf(tmp_path, capsys):
    from repro.events.columnar import ColumnarTrace
    from repro.events.store import ShardedTraceStore, shard_trace

    npz_path = tmp_path / "trace.npz"
    assert main(["hotspot", "--size", "small", "-q", "--trace-out", str(npz_path)]) == 0
    capsys.readouterr()
    original = ColumnarTrace.load_binary(npz_path)
    store_path = tmp_path / "legacy.store"
    legacy = shard_trace(original, store_path, shard_events=4, shard_format="npz")
    assert legacy.shard_format_counts() == {"npz": legacy.num_shards}

    # info reports the per-format shard counts and byte totals.
    assert main(["trace", "info", str(store_path)]) == 0
    out = capsys.readouterr().out
    assert "shard_format.npz:" in out
    assert "on_disk_bytes.npz:" in out

    assert main(["trace", "migrate", str(store_path)]) == 0
    out = capsys.readouterr().out
    assert "migrated" in out and "odpf shard(s)" in out

    migrated = ShardedTraceStore.open(store_path)
    assert set(migrated.shard_format_counts()) == {"odpf"}
    # Default target preserves the shard granularity of the source store.
    assert migrated.num_shards == legacy.num_shards
    assert migrated.load().to_trace().to_dict() == original.to_trace().to_dict()

    assert main(["trace", "info", str(store_path)]) == 0
    out = capsys.readouterr().out
    assert "shard_format.odpf:" in out
    assert "shard_format.npz:" not in out

    # Migration is idempotent and the analysis stays byte-identical.
    assert main(["trace", "migrate", str(store_path)]) == 0
    capsys.readouterr()
    again = ShardedTraceStore.open(store_path)
    assert again.load().to_trace().to_dict() == original.to_trace().to_dict()


def test_trace_migrate_rejects_non_store(tmp_path, capsys):
    json_path = tmp_path / "trace.json"
    assert main(["rsbench", "--size", "small", "-q", "--trace-out", str(json_path)]) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit):
        main(["trace", "migrate", str(json_path)])


def test_trace_convert_flat_round_trip(tmp_path, capsys):
    from repro.events.columnar import ColumnarTrace

    npz_path = tmp_path / "trace.npz"
    assert main(["hotspot", "--size", "small", "-q", "--trace-out", str(npz_path)]) == 0
    capsys.readouterr()
    flat_path = tmp_path / "trace.odpf"
    assert main(["trace", "convert", str(npz_path), str(flat_path)]) == 0
    assert "flat trace" in capsys.readouterr().out
    assert flat_path.read_bytes()[:4] == b"ODPF"

    back_path = tmp_path / "back.npz"
    assert main(["trace", "convert", str(flat_path), str(back_path)]) == 0
    original = ColumnarTrace.load_binary(npz_path)
    restored = ColumnarTrace.load_binary(back_path)
    assert restored.to_trace().to_dict() == original.to_trace().to_dict()


def test_trace_merge_rejects_single_file(tmp_path, capsys):
    json_path = tmp_path / "trace.json"
    assert main(["rsbench", "--size", "small", "-q", "--trace-out", str(json_path)]) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit):
        main(["trace", "merge", str(json_path), str(tmp_path / "out.npz")])


def test_stream_mode_matches_in_memory_report(tmp_path, capsys):
    assert main(["hotspot", "--size", "small", "-q"]) == 0
    in_memory = capsys.readouterr().out

    store_path = tmp_path / "hotspot.store"
    assert main(["hotspot", "--size", "small", "-q", "--stream", "--jobs", "2",
                 "--shard-events", "8", "--trace-out", str(store_path)]) == 0
    streamed = capsys.readouterr().out
    streamed = "\n".join(
        line for line in streamed.splitlines() if not line.startswith("info:")
    )
    assert streamed.strip() == in_memory.strip()
    assert (store_path / "manifest.json").is_file()

    # The store left behind is analyzable offline.
    from repro.events.backends import load_trace
    from repro.events.store import ShardedTraceStore

    assert isinstance(load_trace(store_path), ShardedTraceStore)


def test_stream_rejects_bad_shard_events():
    with pytest.raises(SystemExit):
        main(["hotspot", "--size", "small", "-q", "--stream", "--shard-events", "0"])


@pytest.mark.parametrize("flag", ["--jobs", "--shard-events"])
@pytest.mark.parametrize("value", ["0", "-2", "three"])
def test_count_flags_validated_at_parse_time(flag, value, capsys):
    """--jobs/--shard-events are range-checked by argparse, uniformly."""
    with pytest.raises(SystemExit):
        main(["hotspot", "--size", "small", "-q", "--stream", flag, value])
    err = capsys.readouterr().err
    assert f"expected a positive integer, got '{value}'" in err


def test_trace_shard_rejects_bad_shard_events(tmp_path, capsys):
    with pytest.raises(SystemExit):
        main(["trace", "shard", "in.npz", str(tmp_path / "out.store"),
              "--shard-events", "0"])
    assert "expected a positive integer" in capsys.readouterr().err


@pytest.mark.parametrize("engine", ["thread", "process", "distributed"])
def test_stream_engines_match_in_memory_report(tmp_path, capsys, engine):
    assert main(["hotspot", "--size", "small", "-q"]) == 0
    in_memory = capsys.readouterr().out

    store_path = tmp_path / f"hotspot-{engine}.store"
    assert main(["hotspot", "--size", "small", "-q", "--stream",
                 "--engine", engine, "--jobs", "2", "--shard-events", "4",
                 "--trace-out", str(store_path)]) == 0
    streamed = capsys.readouterr().out
    streamed = "\n".join(
        line for line in streamed.splitlines() if not line.startswith("info:")
    )
    assert streamed.strip() == in_memory.strip()


def test_unknown_engine_rejected():
    with pytest.raises(SystemExit):
        main(["hotspot", "--size", "small", "-q", "--stream",
              "--engine", "quantum"])


def test_queue_requires_distributed_engine(capsys):
    with pytest.raises(SystemExit):
        main(["hotspot", "--size", "small", "-q", "--stream",
              "--engine", "process", "--queue", "some.queue"])
    assert "--engine distributed" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["hotspot", "--size", "small", "-q", "--stream",
              "--engine", "serial", "--queue-timeout", "5"])
    assert "--engine distributed" in capsys.readouterr().err


def test_queue_timeout_fails_clearly_when_no_worker_attaches(tmp_path, capsys):
    """Attach mode with no workers must not hang: --queue-timeout turns
    the wait into a clear CLI error naming the reason."""
    with pytest.raises(SystemExit):
        main(["hotspot", "--size", "small", "-q", "--stream",
              "--engine", "distributed",
              "--queue", str(tmp_path / "nobody.queue"),
              "--queue-timeout", "0.5", "--jobs", "2", "--shard-events", "4"])
    err = capsys.readouterr().err
    assert "distributed run failed" in err and "did not complete" in err


def test_worker_exits_on_done_marker(tmp_path, capsys):
    """A worker pointed at a finished run's queue exits cleanly."""
    from repro.core.distributed import TaskQueue
    from repro.events.transport import LocalDirTransport

    queue_dir = tmp_path / "finished.queue"
    TaskQueue(LocalDirTransport(queue_dir, create=True)).mark_done()
    assert main(["worker", "--queue", str(queue_dir),
                 "--poll-interval", "0.05"]) == 0
    assert "run complete" in capsys.readouterr().out


def test_worker_exits_on_abort_marker(tmp_path, capsys):
    from repro.core.distributed import TaskQueue
    from repro.events.transport import LocalDirTransport

    queue_dir = tmp_path / "aborted.queue"
    TaskQueue(LocalDirTransport(queue_dir, create=True)).mark_abort("boom")
    assert main(["worker", "--queue", str(queue_dir),
                 "--poll-interval", "0.05"]) == 1
    assert "boom" in capsys.readouterr().out


def test_worker_idle_timeout(tmp_path, capsys):
    """With --idle-timeout a worker does not wait forever for a run."""
    assert main(["worker", "--queue", str(tmp_path / "never.queue"),
                 "--poll-interval", "0.05", "--idle-timeout", "0.2"]) == 1
    assert "no run appeared" in capsys.readouterr().out


def test_worker_flag_validation(capsys):
    with pytest.raises(SystemExit):
        main(["worker", "--queue", "q", "--poll-interval", "0"])
    assert "expected a positive number" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["worker", "--queue", "q", "--max-tasks", "0"])
    with pytest.raises(SystemExit):
        main(["worker"])  # --queue is required


def test_trace_compact_reshards_in_place(tmp_path, capsys):
    npz_path = tmp_path / "trace.npz"
    assert main(["hotspot", "--size", "small", "-q", "--trace-out", str(npz_path)]) == 0
    capsys.readouterr()

    store_path = tmp_path / "trace.store"
    assert main(["trace", "shard", str(npz_path), str(store_path),
                 "--shard-events", "2"]) == 0
    capsys.readouterr()

    from repro.events.columnar import ColumnarTrace
    from repro.events.store import ShardedTraceStore

    before = ShardedTraceStore.open(store_path)
    num_before = before.num_shards
    assert num_before > 1

    assert main(["trace", "compact", str(store_path), "--shard-events", "1024"]) == 0
    out = capsys.readouterr().out
    assert f"{num_before} -> 1 shard(s)" in out

    after = ShardedTraceStore.open(store_path)
    assert after.num_shards == 1
    # The superseded shard files are gone, whatever their format.
    assert not any(
        (store_path / f"shard-{num_before - 1:05d}.{fmt}").exists()
        for fmt in ("npz", "odpf")
    )
    original = ColumnarTrace.load_binary(npz_path)
    assert after.load().to_trace().to_dict() == original.to_trace().to_dict()


def _small_store(tmp_path, capsys, shard_events=2):
    npz_path = tmp_path / "trace.npz"
    assert main(["hotspot", "--size", "small", "-q", "--trace-out", str(npz_path)]) == 0
    store_path = tmp_path / "trace.store"
    assert main(["trace", "shard", str(npz_path), str(store_path),
                 "--shard-events", str(shard_events)]) == 0
    capsys.readouterr()
    return store_path


def test_trace_compact_retain_max_shards(tmp_path, capsys):
    store_path = _small_store(tmp_path, capsys)
    from repro.events.store import ShardedTraceStore

    before = ShardedTraceStore.open(store_path)
    assert main(["trace", "compact", str(store_path), "--shard-events", "2",
                 "--retain-max-shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "retention dropped" in out

    after = ShardedTraceStore.open(store_path)
    assert after.num_shards == 2
    assert 0 < len(after) < len(before)


def test_trace_compact_retain_keep_kinds(tmp_path, capsys):
    store_path = _small_store(tmp_path, capsys)
    assert main(["trace", "compact", str(store_path),
                 "--retain-keep-kinds", "transfer_to_device,target"]) == 0
    capsys.readouterr()
    from repro.events.store import ShardedTraceStore

    after = ShardedTraceStore.open(store_path)
    kinds = after.data_op_kind_counts()
    assert kinds["alloc"] == 0
    assert kinds["transfer_to_device"] > 0


def test_trace_compact_retain_max_age(tmp_path, capsys):
    store_path = _small_store(tmp_path, capsys)
    from repro.events.store import ShardedTraceStore

    before = ShardedTraceStore.open(store_path)
    horizon = before.end_time / 2
    assert main(["trace", "compact", str(store_path),
                 "--retain-max-age", str(horizon)]) == 0
    capsys.readouterr()
    after = ShardedTraceStore.open(store_path)
    assert 0 < len(after) < len(before)
    assert after.end_time == before.end_time


def test_trace_compact_rejects_unknown_kind(tmp_path, capsys):
    store_path = _small_store(tmp_path, capsys)
    with pytest.raises(SystemExit):
        main(["trace", "compact", str(store_path),
              "--retain-keep-kinds", "warp-drive"])
    assert "unknown event kind" in capsys.readouterr().err


def test_trace_compact_rejects_negative_age(tmp_path, capsys):
    with pytest.raises(SystemExit):
        main(["trace", "compact", "whatever.store", "--retain-max-age", "-1"])
    assert "non-negative number" in capsys.readouterr().err


def test_trace_shard_into_zip_archive(tmp_path, capsys):
    npz_path = tmp_path / "trace.npz"
    assert main(["hotspot", "--size", "small", "-q", "--trace-out", str(npz_path)]) == 0
    zip_path = tmp_path / "trace.zip"
    assert main(["trace", "shard", str(npz_path), str(zip_path),
                 "--shard-events", "4"]) == 0
    capsys.readouterr()
    assert zip_path.is_file()

    # Sniffed, summarised and compacted like any other store.
    assert main(["trace", "info", str(zip_path)]) == 0
    assert "num_shards:" in capsys.readouterr().out
    assert main(["trace", "compact", str(zip_path), "--shard-events", "1024"]) == 0
    assert "-> 1 shard(s)" in capsys.readouterr().out

    back_path = tmp_path / "back.npz"
    assert main(["trace", "merge", str(zip_path), str(back_path)]) == 0
    from repro.events.columnar import ColumnarTrace

    original = ColumnarTrace.load_binary(npz_path)
    restored = ColumnarTrace.load_binary(back_path)
    assert restored.to_trace().to_dict() == original.to_trace().to_dict()


def test_stream_process_engine_degrades_on_one_core(monkeypatch, capsys):
    """resolve_engine degradation as the CLI surfaces it: the default run
    prints the RuntimeWarning (with its reason), -q suppresses it."""
    monkeypatch.setattr("repro.core.engine._usable_cores", lambda: 1)
    assert main(["hotspot", "--size", "small", "--stream",
                 "--engine", "process", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "warning:" in out and "falling back to the serial engine" in out
    assert "usable core" in out  # the reason travels with the warning
    # -q suppresses the warning but the run still succeeds.
    assert main(["hotspot", "--size", "small", "-q", "--stream",
                 "--engine", "process", "--jobs", "2"]) == 0
    assert "warning:" not in capsys.readouterr().out


def test_stream_process_degradation_reason_for_jobs_one(capsys):
    """--jobs 1 is the other degradation trigger; surfaced the same way."""
    assert main(["hotspot", "--size", "small", "--stream",
                 "--engine", "process", "--jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert "warning:" in out and "--jobs 1" in out


def test_trace_compact_rejects_single_file(tmp_path, capsys):
    json_path = tmp_path / "trace.json"
    assert main(["rsbench", "--size", "small", "-q", "--trace-out", str(json_path)]) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit):
        main(["trace", "compact", str(json_path)])
    assert "not a sharded trace store" in capsys.readouterr().err


def test_trace_subcommand_rejects_missing_file(tmp_path):
    with pytest.raises(SystemExit):
        main(["trace", "info", str(tmp_path / "nope.json")])


def test_unknown_program_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["not-a-program"])


def test_unknown_size_rejected():
    with pytest.raises(SystemExit):
        main(["bfs", "--size", "gigantic"])


def test_unsupported_variant_rejected():
    with pytest.raises(SystemExit):
        main(["lud", "--variant", "fixed"])


def test_missing_program_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_parser_metadata():
    parser = build_parser()
    assert parser.prog == "ompdataperf"


def test_engine_spec_string_with_options(capsys):
    assert main(["hotspot", "--size", "small", "-q", "--stream",
                 "--shard-events", "8", "--jobs", "2",
                 "--engine", "thread"]) == 0
    capsys.readouterr()
    # Options ride the spec string; a bad option fails at parse time.
    with pytest.raises(SystemExit):
        main(["hotspot", "--size", "small", "-q", "--stream",
              "--engine", "distributed:warp_factor=9"])
    err = capsys.readouterr().err
    assert "warp_factor" in err and "known options" in err
    with pytest.raises(SystemExit):
        main(["hotspot", "--size", "small", "-q", "--stream",
              "--engine", "distributed:claim_batch"])
    assert "key=value" in capsys.readouterr().err


def test_engine_spec_distributed_loopback(capsys):
    assert main(["hotspot", "--size", "small", "--stream",
                 "--shard-events", "8", "--jobs", "2",
                 "--engine", "distributed:lease_timeout=60,claim_batch=2"]) == 0
    out = capsys.readouterr().out
    assert "info: distributed:" in out
    assert "speculative" in out


def test_queue_flag_deprecation_single_warning(tmp_path, capsys):
    from repro.core.engine import _DEPRECATION_WARNED

    queue = tmp_path / "dep.queue"
    _DEPRECATION_WARNED.discard("cli-queue-flag")
    # workers=0 attach mode with a run_timeout so the run fails fast —
    # the deprecation warning must appear before the queue ever fills.
    with pytest.raises(SystemExit):
        main(["hotspot", "--size", "small", "--stream",
              "--shard-events", "8", "--jobs", "2",
              "--engine", "distributed:run_timeout=0.5,poll_interval=0.05",
              "--queue", str(queue)])
    first = capsys.readouterr().out
    assert "--queue is deprecated" in first
    # Single-warning policy: a second invocation stays silent.
    import shutil

    shutil.rmtree(queue, ignore_errors=True)
    with pytest.raises(SystemExit):
        main(["hotspot", "--size", "small", "--stream",
              "--shard-events", "8", "--jobs", "2",
              "--engine", "distributed:run_timeout=0.5,poll_interval=0.05",
              "--queue", str(queue)])
    assert "--queue is deprecated" not in capsys.readouterr().out


def test_queue_status_subcommand(tmp_path, capsys):
    queue = tmp_path / "status.queue"
    queue.mkdir()
    assert main(["queue", "status", str(queue)]) == 0
    out = capsys.readouterr().out
    assert "state: no-run" in out
    assert "pending_tasks: 0" in out
    (queue / "done").write_bytes(b"")
    assert main(["queue", "status", str(queue)]) == 0
    assert "state: done" in capsys.readouterr().out


def test_queue_status_reads_hints(tmp_path, capsys):
    import json

    queue = tmp_path / "hinted.queue"
    queue.mkdir()
    (queue / "run.pkl").write_bytes(b"stub")
    (queue / "hints").write_bytes(json.dumps(
        {"version": 1, "pending": 7, "suggested_worker_delta": 3}
    ).encode())
    assert main(["queue", "status", str(queue)]) == 0
    out = capsys.readouterr().out
    assert "state: running" in out
    assert "hints.pending: 7" in out
    assert "hints.suggested_worker_delta: 3" in out
