"""Tests for the Arbalest-Vec-style checker and the coarse profiler baseline."""

import numpy as np
import pytest

from repro.baselines.arbalest import ArbalestVecChecker, IssueKind
from repro.baselines.coarse_profiler import CoarseProfiler
from repro.omp.mapping import alloc, from_, to, tofrom
from repro.omp.runtime import OffloadRuntime


def _runtime_with_checker(conservative=True):
    rt = OffloadRuntime()
    checker = ArbalestVecChecker(conservative=conservative).attach(rt)
    return rt, checker


class TestArbalestUUM:
    def test_read_of_uninitialized_mapping_is_uum(self):
        rt, checker = _runtime_with_checker()
        a = np.zeros(64)
        rt.target(maps=[alloc(a)], reads=[a], kernel=None)
        rt.finish()
        assert [i.kind for i in checker.issues] == [IssueKind.UUM]

    def test_initialized_mapping_is_clean(self):
        rt, checker = _runtime_with_checker()
        a = np.ones(64)
        rt.target(maps=[to(a)], reads=[a], kernel=None)
        rt.finish()
        assert checker.issues == []

    def test_partial_write_flagged_only_in_conservative_mode(self):
        # The paper's false positives: write-only variables reported as UUM.
        for conservative, expected in ((True, [IssueKind.UUM]), (False, [])):
            rt, checker = _runtime_with_checker(conservative=conservative)
            b = np.zeros(64)
            rt.target(maps=[alloc(b)], partial_writes=[b], kernel=None)
            rt.finish()
            assert [i.kind for i in checker.issues] == expected

    def test_full_write_initializes_shadow_state(self):
        rt, checker = _runtime_with_checker()
        b = np.zeros(64)
        with rt.target_data(alloc(b)):
            rt.target(writes=[b], kernel=lambda dev: dev[b].fill(1.0))
            rt.target(reads=[b], kernel=None)
        rt.finish()
        assert checker.issues == []

    def test_issue_deduplication(self):
        rt, checker = _runtime_with_checker()
        b = np.zeros(64)
        with rt.target_data(alloc(b)):
            rt.target(partial_writes=[b], kernel=None)
            rt.target(partial_writes=[b], kernel=None)
        rt.finish()
        assert len(checker.issues) == 1


class TestArbalestOtherClasses:
    def test_stale_data_detected_via_host_write(self):
        rt, checker = _runtime_with_checker()
        a = np.ones(64)
        with rt.target_data(to(a)):
            checker.notify_host_write(int(a.__array_interface__["data"][0]), a.nbytes)
            rt.target(reads=[a], kernel=None)
        rt.finish()
        assert IssueKind.USD in {i.kind for i in checker.issues}

    def test_refreshed_data_is_not_stale(self):
        rt, checker = _runtime_with_checker()
        a = np.ones(64)
        with rt.target_data(to(a)):
            checker.notify_host_write(int(a.__array_interface__["data"][0]), a.nbytes)
            rt.target_update(to=[a])
            rt.target(reads=[a], kernel=None)
        rt.finish()
        assert IssueKind.USD not in {i.kind for i in checker.issues}

    def test_buffer_overflow_detected(self):
        rt, checker = _runtime_with_checker()
        a = np.ones(64)
        with rt.target_data(to(a)):
            checker.notify_host_write(int(a.__array_interface__["data"][0]), a.nbytes * 2)
        rt.finish()
        assert IssueKind.BO in {i.kind for i in checker.issues}

    def test_probe_charges_instrumentation_overhead(self):
        plain = OffloadRuntime()
        a = np.ones(256)
        plain.target(maps=[to(a)], reads=[a], kernel=None, kernel_time=1e-3)
        plain_runtime = plain.finish()

        rt, _ = _runtime_with_checker()
        b = np.ones(256)
        rt.target(maps=[to(b)], reads=[b], kernel=None, kernel_time=1e-3)
        checked_runtime = rt.finish()
        assert checked_runtime > plain_runtime

    def test_report_cell_formats(self):
        rt, checker = _runtime_with_checker()
        a = np.ones(64)
        rt.target(maps=[to(a)], reads=[a], kernel=None)
        rt.finish()
        assert checker.report_cell() == "N/A"
        assert "no data mapping anomalies" in checker.render()


class TestCoarseProfiler:
    def test_aggregates_only(self):
        rt = OffloadRuntime()
        profiler = CoarseProfiler()
        rt.ompt.connect_tool(profiler)
        a = np.ones(1024)
        result = np.zeros(1024)
        rt.target(maps=[to(a), from_(result)], reads=[a], writes=[result],
                  kernel=lambda dev: dev[result].__setitem__(slice(None), dev[a] * 2),
                  kernel_time=1e-4)
        rt.target(maps=[to(a)], reads=[a], kernel=None, kernel_time=1e-4)
        rt.finish()
        profile = profiler.profile
        assert profile.h2d_count == 2
        assert profile.d2h_count == 1
        assert profile.kernel_count == 2
        assert profile.h2d_bytes == 2 * a.nbytes
        assert profile.total_transfer_time > 0.0
        # The coarse profile cannot say whether any transfer was redundant:
        # it exposes no per-pattern information at all.
        assert not hasattr(profile, "duplicate_transfers")
