"""Tests for the collision auditor and the hash-rate harness."""

import numpy as np
import pytest

from repro.hashing.base import Hasher, get_hasher
from repro.hashing.collision import CollisionAuditor, CollisionRecord
from repro.hashing.ratebench import (
    HashRateSample,
    default_figure5_sizes,
    measure_hash_rate,
    sweep_sizes,
)


class _WeakHash(Hasher):
    """A deliberately terrible hash used to exercise collision reporting."""

    name = "weak-test-hash"
    bits = 8

    def hash_bytes(self, data: bytes, seed: int = 0) -> int:
        return len(data) & 0xFF


class TestCollisionAuditor:
    def test_identical_payloads_are_not_collisions(self):
        auditor = CollisionAuditor(get_hasher("vector64"))
        payload = np.arange(128, dtype=np.float64)
        first = auditor.observe(payload)
        second = auditor.observe(payload.copy())
        assert first == second
        assert auditor.is_collision_free()
        assert auditor.num_unique_payloads == 1
        assert auditor.observed == 2

    def test_collisions_are_reported(self):
        auditor = CollisionAuditor(_WeakHash())
        auditor.observe(b"abcd")
        auditor.observe(b"efgh")  # same length -> same weak hash, different bytes
        assert not auditor.is_collision_free()
        assert auditor.num_collisions == 1
        record = auditor.collisions[0]
        assert record.first_payload != record.second_payload

    def test_real_hashes_collision_free_on_transfer_like_payloads(self):
        # Appendix B.1: zero collisions observed across the benchmark traces.
        auditor = CollisionAuditor(get_hasher("vector64"))
        rng = np.random.default_rng(3)
        for _ in range(200):
            auditor.observe(rng.random(rng.integers(1, 64)))
        assert auditor.is_collision_free()

    def test_report_fields(self):
        auditor = CollisionAuditor(get_hasher("crc32"))
        auditor.observe(b"xyz")
        report = auditor.report()
        assert report["hasher"] == "crc32"
        assert report["observed"] == 1
        assert report["stored_bytes"] == 3

    def test_collision_record_requires_distinct_payloads(self):
        with pytest.raises(ValueError):
            CollisionRecord(hash_value=1, first_payload=b"a", second_payload=b"a")


class TestHashRateMeasurement:
    def test_sample_maths(self):
        sample = HashRateSample(hasher="x", nbytes=1 << 30, seconds=2.0, repeats=2)
        assert sample.bytes_per_second == pytest.approx(float(1 << 30))
        assert sample.gib_per_second == pytest.approx(1.0)

    def test_measure_uses_fake_timer(self):
        ticks = iter([0.0, 1.0])
        sample = measure_hash_rate(
            get_hasher("crc32"), [np.zeros(1024, dtype=np.uint8)],
            repeats=4, timer=lambda: next(ticks),
        )
        assert sample.repeats == 4
        assert sample.nbytes == 1024
        assert sample.seconds == pytest.approx(1.0)

    def test_measure_requires_payloads(self):
        with pytest.raises(ValueError):
            measure_hash_rate(get_hasher("crc32"), [])
        with pytest.raises(ValueError):
            measure_hash_rate(get_hasher("crc32"), [b"x"], repeats=0)

    def test_sweep_sizes_produces_one_sample_per_size(self):
        sizes = [64, 256, 1024]
        samples = sweep_sizes(get_hasher("crc32"), sizes, repeats_for=lambda s: 2)
        assert [s.nbytes for s in samples] == sizes
        assert all(s.bytes_per_second > 0 for s in samples)

    def test_sweep_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            sweep_sizes(get_hasher("crc32"), [0])

    def test_default_figure5_sizes_are_powers_of_two(self):
        sizes = default_figure5_sizes()
        assert sizes[0] == 2 and sizes[-1] == 1 << 28
        assert all(s & (s - 1) == 0 for s in sizes)
