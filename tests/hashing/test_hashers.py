"""Tests for the content-hash substrate (Appendix B)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.hashing import DEFAULT_HASHER
from repro.hashing.base import available_hashers, get_hasher, register_hasher, rotl
from repro.hashing.fnv import FNV1a32, FNV1a64
from repro.hashing.murmur import Murmur3_32
from repro.hashing.xx import XXH32, XXH64


class TestKnownVectors:
    """Reference test vectors for the published algorithms."""

    def test_fnv1a32_empty(self):
        assert FNV1a32().hash_bytes(b"") == 0x811C9DC5

    def test_fnv1a32_known(self):
        # FNV-1a("a") from the reference implementation.
        assert FNV1a32().hash_bytes(b"a") == 0xE40C292C

    def test_fnv1a64_empty(self):
        assert FNV1a64().hash_bytes(b"") == 0xCBF29CE484222325

    def test_fnv1a64_known(self):
        assert FNV1a64().hash_bytes(b"a") == 0xAF63DC4C8601EC8C

    def test_murmur3_empty(self):
        assert Murmur3_32().hash_bytes(b"", seed=0) == 0

    def test_murmur3_known(self):
        # Reference vectors from the MurmurHash3 x86_32 implementation.
        assert Murmur3_32().hash_bytes(b"hello", seed=0) == 0x248BFA47
        assert Murmur3_32().hash_bytes(b"hello, world", seed=0) == 0x149BBB7F

    def test_xxh32_empty(self):
        assert XXH32().hash_bytes(b"", seed=0) == 0x02CC5D05

    def test_xxh64_empty(self):
        assert XXH64().hash_bytes(b"", seed=0) == 0xEF46DB3751D8E999


class TestAllHashers:
    @pytest.fixture(params=sorted(available_hashers()))
    def hasher(self, request):
        return get_hasher(request.param)

    def test_deterministic(self, hasher):
        data = b"The quick brown fox jumps over the lazy dog" * 7
        assert hasher.hash_bytes(data) == hasher.hash_bytes(data)

    def test_output_width_respected(self, hasher):
        data = bytes(range(256)) * 3
        value = hasher.hash_bytes(data)
        assert 0 <= value <= hasher.mask

    def test_distinct_payloads_rarely_collide(self, hasher):
        if hasher.name == "adler32":
            pytest.skip("Adler-32 is a checksum kept only as a throughput reference")
        values = {hasher.hash_bytes(f"payload-{i}".encode()) for i in range(512)}
        # A non-cryptographic 32-bit hash should still separate 512 short keys.
        assert len(values) >= 510

    def test_numpy_and_bytes_agree(self, hasher):
        arr = np.arange(257, dtype=np.float64)
        assert hasher.hash(arr) == hasher.hash_bytes(arr.tobytes())

    def test_non_contiguous_array_hashed_by_content(self, hasher):
        arr = np.arange(64, dtype=np.float64)
        strided = arr[::2]
        assert hasher.hash(strided) == hasher.hash_bytes(np.ascontiguousarray(strided).tobytes())

    def test_seed_changes_result(self, hasher):
        data = b"seed sensitivity check, long enough to exercise stripes" * 2
        assert hasher.hash_bytes(data, seed=0) != hasher.hash_bytes(data, seed=1)

    def test_single_bit_flip_changes_hash(self, hasher):
        data = bytearray(b"\x00" * 129)
        base = hasher.hash_bytes(bytes(data))
        data[64] ^= 0x01
        assert hasher.hash_bytes(bytes(data)) != base

    @given(st.binary(min_size=0, max_size=200))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_arbitrary_payloads_accepted(self, hasher, data):
        value = hasher.hash_bytes(data)
        assert 0 <= value <= hasher.mask


class TestVectorHash:
    def test_length_extension_sensitivity(self):
        h = get_hasher("vector64")
        a = b"\x01" * 64
        b = b"\x01" * 72
        assert h.hash_bytes(a) != h.hash_bytes(b)

    def test_lane_order_sensitivity(self):
        h = get_hasher("vector64")
        forward = np.arange(1024, dtype=np.uint64)
        backward = forward[::-1].copy()
        assert h.hash(forward) != h.hash(backward)

    def test_large_buffer_block_path(self):
        h = get_hasher("vector64")
        big = np.arange(h._TABLE_SIZE * 3 + 5, dtype=np.uint64)
        assert h.hash(big) == h.hash(big.copy())


class TestRegistry:
    def test_default_hasher_registered(self):
        assert DEFAULT_HASHER in available_hashers()

    def test_unknown_hasher_raises(self):
        with pytest.raises(KeyError):
            get_hasher("not-a-hash")

    def test_duplicate_registration_rejected(self):
        existing = get_hasher("fnv1a32")
        with pytest.raises(ValueError):
            register_hasher(existing)

    def test_rotl_behaviour(self):
        assert rotl(1, 1, 32) == 2
        assert rotl(0x80000000, 1, 32) == 1
        assert rotl(1, 64) == 1
