"""Integration tests for the experiment harness (quick configurations)."""

import pytest

from repro.apps.base import AppVariant, ProblemSize
from repro.experiments import (
    fig2_overhead,
    fig3_space,
    fig4_speedup,
    fig5_hash_throughput,
    table1_issues,
    table2_comparison,
    table3_runtime,
    table4_hashrate,
    table5_inputs,
    table6_ompt_support,
)
from repro.experiments.common import RunCache
from repro.experiments.runner import available_experiments, run_experiments

_SMALL = [ProblemSize.SMALL]
_FAST_APPS = ("bfs", "hotspot", "rsbench", "xsbench")
_CACHE = RunCache()


class TestFig2AndFig3:
    def test_overhead_rows_and_aggregates(self):
        result = fig2_overhead.run(apps=_FAST_APPS, sizes=_SMALL, cache=_CACHE)
        assert len(result.rows) == len(_FAST_APPS)
        for row in result.rows:
            assert row.slowdown >= 1.0
        assert result.geometric_mean_slowdown >= 1.0
        assert result.worst_slowdown < 2.0
        assert "geometric-mean slowdown" in fig2_overhead.render(result)

    def test_space_overhead_rows(self):
        result = fig3_space.run(apps=_FAST_APPS, sizes=_SMALL, cache=_CACHE)
        for row in result.rows:
            assert row.overhead_bytes == 72 * row.num_data_op_events + 24 * row.num_target_events
            assert row.accumulation_rate > 0
        assert "Peak space overhead" in fig3_space.render(result)


class TestTable1:
    def test_small_size_counts_match_structure(self):
        result = table1_issues.run(apps=_FAST_APPS, size=ProblemSize.SMALL, cache=_CACHE)
        bfs = result.find("bfs", AppVariant.BASELINE)
        assert bfs is not None and bfs.as_tuple() == (18, 10, 9, 0, 0)
        fixed = result.find("bfs", AppVariant.FIXED)
        assert fixed is not None and fixed.as_tuple() == (1, 0, 0, 0, 0)
        hotspot_syn = result.find("hotspot", AppVariant.SYNTHETIC)
        assert hotspot_syn is not None and hotspot_syn.as_tuple() == (12, 4, 10, 0, 0)
        assert "Table 1" in table1_issues.render(result)

    def test_paper_reference_tables_cover_all_apps(self):
        assert set(table1_issues.PAPER_BASELINE_COUNTS) == set(
            ("babelstream", "bfs", "hotspot", "lud", "minife", "minifmm",
             "nw", "rsbench", "tealeaf", "xsbench")
        )


class TestFig4:
    def test_points_and_error_metrics(self):
        result = fig4_speedup.run(apps=("bfs", "rsbench", "xsbench"), sizes=_SMALL, cache=_CACHE)
        assert len(result.points) == 3
        for point in result.points:
            assert point.predicted_speedup >= 1.0
            assert point.actual_speedup > 0.0
        assert result.mean_relative_error() < 0.5
        assert "Predicted vs actual" in fig4_speedup.render(result)


class TestArbalestComparison:
    def test_table2_matches_paper_cells(self):
        result = table2_comparison.run(size=ProblemSize.SMALL)
        for app, (omp_expected, arbalest_expected) in table2_comparison.PAPER_TABLE2.items():
            row = result.find(app)
            assert row is not None, app
            assert row.ompdataperf_classes == omp_expected
            assert row.arbalest_classes == arbalest_expected
        assert "Arbalest-Vec" in table2_comparison.render(result)

    def test_table3_shape(self):
        result = table3_runtime.run(size=ProblemSize.SMALL, cache=_CACHE)
        for app, (_, paper_after, paper_av) in table3_runtime.PAPER_TABLE3.items():
            row = result.find(app)
            assert row is not None, app
            assert row.arbalest_cell == paper_av
            if paper_after is None:
                assert row.after_ompdataperf is None
            else:
                assert row.after_ompdataperf is not None
                assert row.after_ompdataperf <= row.before
        # bspline shows the largest relative improvement, as in the paper.
        speedups = {
            row.app: (row.ompdataperf_speedup or 1.0) for row in result.rows
        }
        assert max(speedups, key=speedups.get) == "bspline-vgh-omp"
        assert "Table 3" in table3_runtime.render(result)


class TestHashExperiments:
    def test_table4_ordering(self):
        result = table4_hashrate.run(apps=("bfs",), size=ProblemSize.SMALL,
                                     max_payloads=32, max_bytes=1 << 20)
        assert result.cells
        # The vectorised / library hashes must beat the byte-at-a-time hashes.
        assert result.average_rate("vector64") > result.average_rate("fnv1a64")
        assert result.average_rate("crc32") > result.average_rate("murmur3_32")
        assert "Hash rate" in table4_hashrate.render(result)

    def test_fig5_series(self):
        sizes = fig5_hash_throughput.default_sizes(max_power=12)
        result = fig5_hash_throughput.run(hasher_names=("crc32",), sizes=sizes)
        assert set(result.series_names()) == {"crc32", "data transfer (modelled)"}
        transfer = result.series("data transfer (modelled)")
        # Transfer throughput must rise monotonically with buffer size
        # (latency amortisation), as in Figure 5.
        rates = [p.bytes_per_second for p in transfer]
        assert rates == sorted(rates)
        assert "throughput vs data size" in fig5_hash_throughput.render(result)


class TestStaticTables:
    def test_table5_contains_every_evaluation_app(self):
        result = table5_inputs.run()
        assert len(result.rows) == 10
        assert result.find("bfs").domain == "Graph Algorithms"
        assert "Table 5" in table5_inputs.render(result)

    def test_table6_compatibility_queries(self):
        result = table6_ompt_support.run()
        compatible = set(result.compatible_compilers())
        assert "LLVM Clang/Flang" in compatible
        assert "NVIDIA NVHPC" in compatible
        assert "GNU GCC" not in compatible
        assert "Arm ACfL" not in compatible
        assert "Table 6" in table6_ompt_support.render(result)

    def test_unknown_feature_rejected(self):
        with pytest.raises(KeyError):
            table6_ompt_support.COMPILERS[0].supports("not-a-feature")


class TestRunner:
    def test_available_experiments(self):
        keys = available_experiments()
        assert {"fig2", "table1", "table6"} <= set(keys)

    def test_static_experiments_through_runner(self):
        outputs = run_experiments(["table5", "table6"], quick=True)
        assert set(outputs) == {"table5", "table6"}
        assert "Table 5" in outputs["table5"]

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyError):
            run_experiments(["nope"], quick=True)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_experiments(["table6"], quick=True, jobs=0)

    def test_parallel_output_identical_to_serial(self):
        # fig3 exercises real application runs through the shared cache;
        # table5/table6 are static.  The CI workflow covers the full
        # run_all(quick=True) sweep.
        keys = ["fig3", "table5", "table6"]
        serial = run_experiments(keys, quick=True)
        parallel = run_experiments(keys, quick=True, jobs=3)
        assert parallel == serial
        assert list(parallel) == keys  # spec order preserved
