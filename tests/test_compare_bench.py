"""Tests for benchmarks/compare_bench.py (the CI regression gate).

The script is imported by path (the benchmarks directory is not a
package) and exercised against synthetic BENCH fixtures: a >25% throughput
drop must exit nonzero, within-tolerance noise and missing baselines must
pass.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "compare_bench.py"
_spec = importlib.util.spec_from_file_location("compare_bench", _SCRIPT)
compare_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_bench)


def _write_bench(directory: Path, name: str, rate: float, nested_rate: float) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    record = {
        "benchmark": name,
        "aggregate": {"events_per_sec": rate, "seconds": 1.0},
        "engines": {
            "process": {"4": {"events_per_sec": nested_rate, "speedup_vs_serial": 2.0}}
        },
    }
    (directory / f"BENCH_{name}.json").write_text(
        json.dumps(record, indent=2), encoding="utf-8"
    )


def test_extract_metrics_walks_nested_records():
    metrics = compare_bench.extract_metrics(
        {
            "events_per_sec": 10.0,
            "detectors": {"dup": {"events_per_sec": 5.0, "seconds": 2.0}},
            "sweep": [{"events_per_sec": 1.0}, {"other": 3}],
        }
    )
    assert metrics == {
        "events_per_sec": 10.0,
        "detectors.dup.events_per_sec": 5.0,
        "sweep[0].events_per_sec": 1.0,
    }


def test_synthetic_regression_fails(tmp_path, capsys):
    """The acceptance fixture: a 25%+ drop in events_per_sec exits nonzero."""
    _write_bench(tmp_path / "base", "detectors", 1_000_000.0, 2_000_000.0)
    _write_bench(tmp_path / "cur", "detectors", 700_000.0, 2_000_000.0)  # -30%
    rc = compare_bench.main(
        ["--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "cur")]
    )
    assert rc == 1
    err = capsys.readouterr().err
    assert "regression" in err
    assert "aggregate.events_per_sec" in err


def test_within_tolerance_passes(tmp_path, capsys):
    _write_bench(tmp_path / "base", "detectors", 1_000_000.0, 2_000_000.0)
    _write_bench(tmp_path / "cur", "detectors", 800_000.0, 1_900_000.0)  # -20%, -5%
    rc = compare_bench.main(
        ["--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "cur")]
    )
    assert rc == 0
    assert "within tolerance" in capsys.readouterr().out


def test_improvement_passes(tmp_path):
    _write_bench(tmp_path / "base", "engine", 1_000_000.0, 1_000_000.0)
    _write_bench(tmp_path / "cur", "engine", 3_000_000.0, 5_000_000.0)
    assert compare_bench.main(
        ["--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "cur")]
    ) == 0


def test_missing_baseline_is_neutral_not_pass(tmp_path, capsys):
    """No baseline exits with the DISTINCT neutral status (3), never 0:
    CI maps it to pass-with-notice, so a gate that never actually
    compared anything cannot read as 'all metrics within tolerance'."""
    _write_bench(tmp_path / "cur", "detectors", 1_000_000.0, 1.0)
    rc = compare_bench.main(
        ["--baseline", str(tmp_path / "nope"), "--current", str(tmp_path / "cur")]
    )
    assert rc == compare_bench.EXIT_NO_BASELINE == 3
    assert "neutral" in capsys.readouterr().out


def test_empty_baseline_dir_is_neutral(tmp_path, capsys):
    (tmp_path / "base").mkdir()
    _write_bench(tmp_path / "cur", "detectors", 1_000_000.0, 1.0)
    rc = compare_bench.main(
        ["--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "cur")]
    )
    assert rc == compare_bench.EXIT_NO_BASELINE
    assert "no baseline records" in capsys.readouterr().out


def test_neutral_status_distinct_from_regression_and_ok():
    assert compare_bench.EXIT_NO_BASELINE not in (0, 1, 2)


def test_new_and_removed_benchmarks_never_fail(tmp_path, capsys):
    _write_bench(tmp_path / "base", "old", 1_000_000.0, 1.0)
    _write_bench(tmp_path / "cur", "brand_new", 10.0, 10.0)
    rc = compare_bench.main(
        ["--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "cur")]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "baseline only" in out and "new benchmark" in out


def test_tighter_tolerance_catches_smaller_drops(tmp_path):
    _write_bench(tmp_path / "base", "detectors", 1_000_000.0, 1_000_000.0)
    _write_bench(tmp_path / "cur", "detectors", 850_000.0, 1_000_000.0)  # -15%
    args = ["--baseline", str(tmp_path / "base"), "--current", str(tmp_path / "cur")]
    assert compare_bench.main(args) == 0
    assert compare_bench.main(args + ["--tolerance", "0.10"]) == 1


def test_bad_tolerance_rejected(tmp_path):
    with pytest.raises(SystemExit):
        compare_bench.main(
            ["--baseline", ".", "--current", ".", "--tolerance", "1.5"]
        )


def test_repo_bench_records_compare_clean_against_themselves(tmp_path):
    """The real BENCH_*.json records in the repo root parse and self-compare."""
    repo_root = Path(__file__).resolve().parent.parent
    if not list(repo_root.glob("BENCH_*.json")):
        pytest.skip("no benchmark records present")
    assert compare_bench.main(
        ["--baseline", str(repo_root), "--current", str(repo_root)]
    ) == 0


def test_new_stats_fields_are_neutral_against_old_baselines(tmp_path, capsys):
    """A baseline written before the distributed stats block grew
    (speculative_launches, debris_blobs, peak_unmerged_chains, hints)
    compares clean against a current record that has them: the new
    leaves exist only on the current side, which is never a failure."""
    base, cur = tmp_path / "base", tmp_path / "cur"
    _write_bench(base, "engine", 1_000_000.0, 1.0)
    _write_bench(cur, "engine", 1_000_000.0, 1.0)
    record = json.loads((cur / "BENCH_engine.json").read_text())
    record["engines"]["distributed"] = {
        "2": {
            "events_per_sec": 5.0,
            "speculative_launches": 0,
            "debris_blobs": 0,
            "peak_unmerged_chains": 1,
            "hints": {"suggested_worker_delta": 0, "pending": 0},
        }
    }
    (cur / "BENCH_engine.json").write_text(json.dumps(record), encoding="utf-8")
    rc = compare_bench.main(
        ["--baseline", str(base), "--current", str(cur)]
    )
    assert rc == 0
    # And symmetrically: an old current against a new baseline stays ok.
    rc = compare_bench.main(
        ["--baseline", str(cur), "--current", str(base)]
    )
    assert rc == 0
