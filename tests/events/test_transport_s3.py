"""S3 transport specifics: retry/backoff, multipart, URLs, spec plumbing.

The conformance suite (``test_transport.py``) holds ``S3ObjectStoreTransport``
to the shared :class:`ShardTransport` contract; this module pins the parts
only the real client has — the bounded retry loop with jittered backoff on
throttling/5xx (asserted through a scripted stub client and the ``stats()``
counter block), the multipart upload path above the size threshold, the
``s3://bucket/prefix`` URL plumbing into :func:`open_transport` /
:func:`transport_from_spec` / :func:`load_trace`, and pickling across the
process-engine boundary.
"""

from __future__ import annotations

import pickle

import pytest

boto3 = pytest.importorskip("boto3")
from botocore.exceptions import ClientError, EndpointConnectionError  # noqa: E402

from repro.events.transport import (  # noqa: E402
    TransportError,
    open_transport,
    transport_from_spec,
)
from repro.events.transport_s3 import (  # noqa: E402
    S3ObjectStoreTransport,
    is_s3_url,
    parse_s3_url,
)


def _client_error(code: str, status: int = 400) -> ClientError:
    return ClientError(
        {
            "Error": {"Code": code, "Message": code},
            "ResponseMetadata": {"HTTPStatusCode": status},
        },
        "GetObject",
    )


class _ScriptedBody:
    def __init__(self, data: bytes) -> None:
        self._data = data

    def read(self) -> bytes:
        return self._data


class _ScriptedClient:
    """A stub boto3 client that raises a scripted error sequence first."""

    def __init__(self, errors: list[BaseException], payload: bytes = b"ok") -> None:
        self.errors = list(errors)
        self.payload = payload
        self.calls = 0

    def get_object(self, *, Bucket, Key):
        self.calls += 1
        if self.errors:
            raise self.errors.pop(0)
        return {"Body": _ScriptedBody(self.payload)}


def _transport(client, **kwargs) -> S3ObjectStoreTransport:
    t = S3ObjectStoreTransport("bkt", "pre", client=client, **kwargs)
    t._sleep = t.__dict__.setdefault("_recorded_sleeps", []).append
    return t


# --------------------------------------------------------------------- #
# Bounded retry with jittered backoff
# --------------------------------------------------------------------- #
def test_throttling_is_retried_until_success():
    client = _ScriptedClient([_client_error("SlowDown"), _client_error("Throttling")])
    t = _transport(client, max_attempts=5)
    assert t.read_blob("x.bin") == b"ok"
    assert client.calls == 3
    stats = t.stats()
    assert stats["throttled"] == 2
    assert stats["retries"] == 2
    assert stats["giveups"] == 0
    assert len(t._recorded_sleeps) == 2


def test_server_errors_and_connection_drops_are_retried():
    client = _ScriptedClient(
        [
            _client_error("InternalError", status=500),
            EndpointConnectionError(endpoint_url="http://s3.test"),
            _client_error("ServiceUnavailable", status=503),
        ]
    )
    t = _transport(client, max_attempts=5)
    assert t.read_blob("x.bin") == b"ok"
    stats = t.stats()
    assert stats["server_errors"] == 2
    assert stats["connection_errors"] == 1
    assert stats["retries"] == 3


def test_attempts_are_bounded_and_giveup_is_counted():
    client = _ScriptedClient([_client_error("SlowDown", status=503)] * 50)
    t = _transport(client, max_attempts=4)
    with pytest.raises(TransportError, match="failed after 4 attempt"):
        t.read_blob("x.bin")
    assert client.calls == 4  # bounded: max_attempts requests, no more
    stats = t.stats()
    assert stats["giveups"] == 1
    assert stats["retries"] == 3  # sleeps happen between attempts only
    assert len(t._recorded_sleeps) == 3


def test_backoff_grows_exponentially_with_jitter():
    client = _ScriptedClient([_client_error("SlowDown")] * 4)
    t = _transport(client, max_attempts=5, backoff_base=0.1, backoff_cap=10.0)
    import random

    t._jitter = random.Random(1234)  # deterministic jitter for the bounds
    assert t.read_blob("x.bin") == b"ok"
    sleeps = t._recorded_sleeps
    assert len(sleeps) == 4
    for attempt, pause in enumerate(sleeps):
        ceiling = 0.1 * 2**attempt
        # Uniform jitter in [ceiling/2, ceiling]: never a fixed ladder.
        assert ceiling / 2 <= pause <= ceiling
    assert t.stats()["backoff_seconds"] == pytest.approx(sum(sleeps))


def test_backoff_is_capped():
    client = _ScriptedClient([_client_error("SlowDown")] * 6)
    t = _transport(client, max_attempts=7, backoff_base=1.0, backoff_cap=2.0)
    assert t.read_blob("x.bin") == b"ok"
    assert max(t._recorded_sleeps) <= 2.0


def test_non_retryable_errors_fail_immediately():
    client = _ScriptedClient([_client_error("NoSuchKey", status=404)])
    t = _transport(client, max_attempts=5)
    with pytest.raises(TransportError, match="no object"):
        t.read_blob("x.bin")
    assert client.calls == 1  # zero retries, zero sleeps
    assert t._recorded_sleeps == []
    assert t.stats()["retries"] == 0


def test_access_denied_fails_immediately():
    client = _ScriptedClient([_client_error("AccessDenied", status=403)] * 3)
    t = _transport(client, max_attempts=5)
    with pytest.raises(TransportError, match="get failed"):
        t.read_blob("x.bin")
    assert client.calls == 1


def test_stats_counts_logical_ops():
    client = _ScriptedClient([])
    t = _transport(client)
    t.read_blob("a.bin")
    t.read_blob("b.bin")
    assert t.stats()["ops"] == {"get": 2}


# --------------------------------------------------------------------- #
# Multipart upload
# --------------------------------------------------------------------- #
class _MultipartRecorder:
    """Stub client that records the multipart call sequence."""

    def __init__(self, fail_part: int = 0) -> None:
        self.sequence: list[str] = []
        self.parts: list[tuple[int, int]] = []
        self.fail_part = fail_part
        self.aborted = False
        self.completed = None

    def put_object(self, **kwargs):
        self.sequence.append("put_object")

    def create_multipart_upload(self, *, Bucket, Key):
        self.sequence.append("create")
        return {"UploadId": "up-1"}

    def upload_part(self, *, Bucket, Key, UploadId, PartNumber, Body):
        if PartNumber == self.fail_part:
            raise _client_error("NoSuchUpload")
        self.sequence.append(f"part-{PartNumber}")
        self.parts.append((PartNumber, len(Body)))
        return {"ETag": f"etag-{PartNumber}"}

    def complete_multipart_upload(self, *, Bucket, Key, UploadId, MultipartUpload):
        self.sequence.append("complete")
        self.completed = MultipartUpload["Parts"]
        return {}

    def abort_multipart_upload(self, *, Bucket, Key, UploadId):
        self.aborted = True


def test_small_payloads_use_plain_put():
    client = _MultipartRecorder()
    t = _transport(client, multipart_threshold=1024, multipart_part_size=512)
    t.write_blob("small.bin", b"x" * 1023)
    assert client.sequence == ["put_object"]
    assert t.stats()["multipart_uploads"] == 0


def test_large_payloads_upload_in_parts():
    client = _MultipartRecorder()
    t = _transport(client, multipart_threshold=1024, multipart_part_size=400)
    t.write_blob("big.bin", b"x" * 1000 + b"y" * 100)
    assert client.sequence == ["create", "part-1", "part-2", "part-3", "complete"]
    assert client.parts == [(1, 400), (2, 400), (3, 300)]
    assert client.completed == [
        {"PartNumber": 1, "ETag": "etag-1"},
        {"PartNumber": 2, "ETag": "etag-2"},
        {"PartNumber": 3, "ETag": "etag-3"},
    ]
    assert t.stats()["multipart_uploads"] == 1


def test_failed_multipart_upload_is_aborted():
    client = _MultipartRecorder(fail_part=2)
    t = _transport(client, multipart_threshold=64, multipart_part_size=64, max_attempts=1)
    with pytest.raises(TransportError):
        t.write_blob("big.bin", b"x" * 200)
    assert client.aborted
    assert client.completed is None


def test_multipart_round_trips_through_moto(monkeypatch):
    moto = pytest.importorskip("moto")
    for var in ("AWS_ACCESS_KEY_ID", "AWS_SECRET_ACCESS_KEY"):
        monkeypatch.setenv(var, "testing")
    monkeypatch.setenv("AWS_DEFAULT_REGION", "us-east-1")
    monkeypatch.delenv("OMPDATAPERF_S3_ENDPOINT", raising=False)
    with moto.mock_aws():
        # Real S3 requires >= 5 MiB parts; moto enforces the same floor.
        t = S3ObjectStoreTransport(
            "bkt",
            "mp",
            multipart_threshold=6 * 1024 * 1024,
            multipart_part_size=5 * 1024 * 1024,
            create=True,
        )
        payload = bytes(range(256)) * (32 * 1024)  # 8 MiB, patterned
        t.write_blob("big.bin", payload)
        assert t.stats()["multipart_uploads"] == 1
        assert t.read_blob("big.bin") == payload
        assert t.blob_size("big.bin") == len(payload)


# --------------------------------------------------------------------- #
# URLs, specs, pickling
# --------------------------------------------------------------------- #
def test_s3_url_parsing():
    assert is_s3_url("s3://bucket/a/b")
    assert not is_s3_url("/local/path")
    assert not is_s3_url(None)
    assert parse_s3_url("s3://bucket/a/b/") == ("bucket", "a/b")
    assert parse_s3_url("s3://bucket") == ("bucket", "")
    with pytest.raises(ValueError):
        parse_s3_url("s3:///no-bucket")
    with pytest.raises(ValueError):
        parse_s3_url("http://bucket/x")


def test_open_transport_resolves_s3_urls(monkeypatch):
    monkeypatch.delenv("OMPDATAPERF_S3_ENDPOINT", raising=False)
    t = open_transport("s3://bucket/runs/a", create=False)
    assert isinstance(t, S3ObjectStoreTransport)
    assert t.bucket == "bucket"
    assert t.prefix == "runs/a"
    assert t.describe() == "s3://bucket/runs/a"


def test_spec_round_trips_without_a_live_client(monkeypatch):
    monkeypatch.delenv("OMPDATAPERF_S3_ENDPOINT", raising=False)
    t = S3ObjectStoreTransport(
        "bucket",
        "runs/a",
        endpoint_url="http://minio.test:9000",
        multipart_threshold=123,
        max_attempts=7,
    )
    rebuilt = transport_from_spec(pickle.loads(pickle.dumps(t.spec())))
    assert isinstance(rebuilt, S3ObjectStoreTransport)
    assert rebuilt.bucket == "bucket"
    assert rebuilt.prefix == "runs/a"
    assert rebuilt.endpoint_url == "http://minio.test:9000"
    assert rebuilt.multipart_threshold == 123
    assert rebuilt.max_attempts == 7


def test_transport_pickles_without_client(monkeypatch):
    monkeypatch.delenv("OMPDATAPERF_S3_ENDPOINT", raising=False)
    t = S3ObjectStoreTransport("bucket", "p", endpoint_url="http://minio.test:9000")
    clone = pickle.loads(pickle.dumps(t))
    assert clone.bucket == "bucket"
    assert clone._client is None  # rebuilt lazily on first use


def test_store_and_load_trace_through_s3_url(monkeypatch):
    moto = pytest.importorskip("moto")
    for var in ("AWS_ACCESS_KEY_ID", "AWS_SECRET_ACCESS_KEY"):
        monkeypatch.setenv(var, "testing")
    monkeypatch.setenv("AWS_DEFAULT_REGION", "us-east-1")
    monkeypatch.delenv("OMPDATAPERF_S3_ENDPOINT", raising=False)
    from repro.events.backends import load_trace
    from repro.events.store import ShardedTraceStore, merge_shards, shard_trace
    from repro.events.synth import make_synthetic_columnar_trace

    with moto.mock_aws():
        ct = make_synthetic_columnar_trace(400)
        url = "s3://bkt/runs/demo"
        shard_trace(ct, open_transport(url, create=True), shard_events=100)
        loaded = load_trace(url)
        assert isinstance(loaded, ShardedTraceStore)
        assert loaded.num_shards >= 4
        merged = merge_shards(loaded)
        assert merged.to_trace().to_dict() == ct.to_trace().to_dict()


def test_ensure_bucket_is_idempotent(monkeypatch):
    moto = pytest.importorskip("moto")
    for var in ("AWS_ACCESS_KEY_ID", "AWS_SECRET_ACCESS_KEY"):
        monkeypatch.setenv(var, "testing")
    monkeypatch.setenv("AWS_DEFAULT_REGION", "us-east-1")
    monkeypatch.delenv("OMPDATAPERF_S3_ENDPOINT", raising=False)
    with moto.mock_aws():
        a = S3ObjectStoreTransport("same-bucket", "a", create=True)
        b = S3ObjectStoreTransport("same-bucket", "b", create=True)
        a.write_blob("x", b"1")
        b.write_blob("x", b"2")
        # Prefixes isolate the namespaces inside the shared bucket.
        assert a.read_blob("x") == b"1"
        assert b.read_blob("x") == b"2"


def test_constructor_validation():
    with pytest.raises(ValueError, match="bucket"):
        S3ObjectStoreTransport("", client=object())
    with pytest.raises(ValueError, match="max_attempts"):
        S3ObjectStoreTransport("b", client=object(), max_attempts=0)
    with pytest.raises(ValueError, match="part_size"):
        S3ObjectStoreTransport("b", client=object(), multipart_part_size=0)
