"""Tests for the Trace container."""

import pytest

from repro.events.records import DATA_OP_EVENT_BYTES, TARGET_EVENT_BYTES, DataOpKind
from repro.events.trace import Trace

from tests.conftest import TraceBuilder


def _sample_trace() -> Trace:
    b = TraceBuilder()
    b.alloc(0x100, 0xA00, nbytes=512)
    b.h2d(0x100, 0xA00, content_hash=1, nbytes=512)
    b.kernel()
    b.d2h(0x100, 0xA00, content_hash=2, nbytes=512)
    b.delete(0x100, 0xA00, nbytes=512)
    return b.build()


class TestTraceViews:
    def test_filters(self):
        trace = _sample_trace()
        assert len(trace.transfers()) == 2
        assert len(trace.transfers_to_devices()) == 1
        assert len(trace.transfers_from_devices()) == 1
        assert len(trace.allocations()) == 1
        assert len(trace.deletions()) == 1
        assert len(trace.kernel_events()) == 1

    def test_totals(self):
        trace = _sample_trace()
        assert trace.total_bytes_transferred() == 1024
        assert trace.total_transfer_time() == pytest.approx(4e-5)
        assert trace.total_kernel_time() == pytest.approx(1e-4)
        assert trace.total_alloc_time() == pytest.approx(1.5e-5)

    def test_space_overhead_accounting(self):
        trace = _sample_trace()
        expected = 4 * DATA_OP_EVENT_BYTES + 1 * TARGET_EVENT_BYTES
        assert trace.space_overhead_bytes() == expected

    def test_host_device_num(self):
        assert Trace(num_devices=3).host_device_num == 3

    def test_runtime_prefers_explicit_total(self):
        trace = _sample_trace()
        assert trace.runtime == pytest.approx(trace.total_runtime)
        trace.total_runtime = None
        assert trace.runtime == pytest.approx(trace.end_time)

    def test_len_and_empty(self):
        assert Trace().is_empty()
        assert len(_sample_trace()) == 5

    def test_events_for_device(self):
        b = TraceBuilder(num_devices=2)
        b.h2d(0x1, 0xA, content_hash=1, device=0)
        b.h2d(0x2, 0xB, content_hash=2, device=1)
        b.kernel(device=1)
        trace = b.build()
        sub = trace.events_for_device(1)
        assert len(sub.data_op_events) == 1
        assert len(sub.target_events) == 1

    def test_summary_keys(self):
        summary = _sample_trace().summary()
        for key in ("num_transfers", "bytes_transferred", "runtime", "space_overhead_bytes"):
            assert key in summary


class TestTraceSerialization:
    def test_json_round_trip(self):
        trace = _sample_trace()
        restored = Trace.from_json(trace.to_json())
        assert restored.num_devices == trace.num_devices
        assert restored.program_name == trace.program_name
        assert restored.data_op_events == trace.data_op_events
        assert restored.target_events == trace.target_events
        assert restored.runtime == pytest.approx(trace.runtime)

    def test_file_round_trip(self, tmp_path):
        trace = _sample_trace()
        path = tmp_path / "trace.json"
        trace.save(path)
        assert Trace.load(path).data_op_events == trace.data_op_events

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            Trace.from_dict({"format_version": 999, "num_devices": 1})


class TestTraceComposition:
    def test_extend_merges_events(self):
        first = _sample_trace()
        other = Trace(num_devices=1)
        n_before = len(first)
        first.extend(other)
        assert len(first) == n_before

    def test_extend_rejects_device_mismatch(self):
        with pytest.raises(ValueError):
            _sample_trace().extend(Trace(num_devices=2))

    def test_sorted_copy_orders_chronologically(self):
        trace = _sample_trace()
        trace.data_op_events.reverse()
        ordered = trace.sorted_copy()
        starts = [e.start_time for e in ordered.data_op_events]
        assert starts == sorted(starts)

    def test_all_events_chronological_interleaves(self):
        trace = _sample_trace()
        events = list(trace.all_events_chronological())
        assert len(events) == len(trace)
        starts = [e.start_time for e in events]
        assert starts == sorted(starts)
