"""Tests for the columnar (structure-of-arrays) trace representation."""

import numpy as np
import pytest

from repro.events.columnar import (
    COLUMNAR_FORMAT_VERSION,
    ColumnarTrace,
    as_columnar,
    as_object_trace,
    load_trace,
)
from repro.events.records import DataOpKind, TargetKind
from repro.events.synth import make_synthetic_columnar_trace
from repro.events.trace import Trace
from repro.events.validation import TraceValidationError, validate_trace

from tests.conftest import TraceBuilder


def _sample_trace() -> Trace:
    b = TraceBuilder()
    b.alloc(0x100, 0xA00, nbytes=512, codeptr=0x5555)
    b.h2d(0x100, 0xA00, content_hash=1, nbytes=512)
    b.kernel(name="k0", codeptr=0x6666)
    b.d2h(0x100, 0xA00, content_hash=2, nbytes=512)
    b.delete(0x100, 0xA00, nbytes=512)
    return b.build()


class TestConversion:
    def test_round_trip_is_lossless(self):
        trace = _sample_trace()
        restored = ColumnarTrace.from_trace(trace).to_trace()
        assert restored.data_op_events == trace.data_op_events
        assert restored.target_events == trace.target_events
        assert restored.num_devices == trace.num_devices
        assert restored.program_name == trace.program_name
        assert restored.total_runtime == trace.total_runtime

    def test_optional_fields_preserved(self):
        trace = _sample_trace()
        ct = ColumnarTrace.from_trace(trace)
        alloc = ct.data_op_events[0]
        assert alloc.codeptr == 0x5555
        assert alloc.content_hash is None
        kernel = ct.target_events[0]
        assert kernel.name == "k0"
        assert kernel.codeptr == 0x6666

    def test_trace_to_columnar_hook(self):
        trace = _sample_trace()
        assert trace.to_columnar().to_trace().data_op_events == trace.data_op_events

    def test_as_columnar_and_as_object_are_idempotent(self):
        trace = _sample_trace()
        ct = as_columnar(trace)
        assert as_columnar(ct) is ct
        assert as_object_trace(trace) is trace
        assert as_object_trace(ct).data_op_events == trace.data_op_events


class TestTraceCompatibleApi:
    def test_views_match_object_trace(self):
        trace = _sample_trace()
        ct = ColumnarTrace.from_trace(trace)
        assert ct.transfers() == trace.transfers()
        assert ct.transfers_to_devices() == trace.transfers_to_devices()
        assert ct.transfers_from_devices() == trace.transfers_from_devices()
        assert ct.allocations() == trace.allocations()
        assert ct.deletions() == trace.deletions()
        assert ct.kernel_events() == trace.kernel_events()
        assert ct.alloc_delete_pairs() == trace.alloc_delete_pairs()

    def test_aggregates_match_object_trace(self):
        trace = _sample_trace()
        ct = ColumnarTrace.from_trace(trace)
        assert ct.summary() == trace.summary()
        assert len(ct) == len(trace)
        assert ct.end_time == pytest.approx(trace.end_time)
        assert ct.space_overhead_bytes() == trace.space_overhead_bytes()

    def test_events_for_device(self):
        b = TraceBuilder(num_devices=2)
        b.h2d(0x1, 0xA, content_hash=1, device=0)
        b.h2d(0x2, 0xB, content_hash=2, device=1)
        b.kernel(device=1)
        ct = ColumnarTrace.from_trace(b.build())
        sub = ct.events_for_device(1)
        assert len(sub.data_op_events) == 1
        assert len(sub.target_events) == 1

    def test_all_events_chronological(self):
        ct = ColumnarTrace.from_trace(_sample_trace())
        events = list(ct.all_events_chronological())
        assert len(events) == len(ct)
        starts = [e.start_time for e in events]
        assert starts == sorted(starts)


class TestColumnsAndAppend:
    def test_column_views_are_zero_copy(self):
        ct = ColumnarTrace.from_trace(_sample_trace())
        view = ct.do_start_time
        assert view.base is not None  # a slice of the backing buffer
        assert view.size == ct.num_data_op_events

    def test_amortized_growth(self):
        ct = ColumnarTrace()
        for i in range(300):
            ct.append_data_op(
                seq=i, kind=DataOpKind.ALLOC, src_device_num=1, dest_device_num=0,
                src_addr=0x100, dest_addr=0xA00 + i, nbytes=64,
                start_time=float(i), end_time=float(i) + 0.5,
            )
        assert ct.num_data_op_events == 300
        assert ct._data_ops.capacity >= 300
        # Capacity doubles: far fewer reallocations than appends.
        assert ct._data_ops.capacity <= 1024

    def test_append_enforces_event_invariants(self):
        ct = ColumnarTrace()
        with pytest.raises(ValueError):
            ct.append_data_op(
                seq=0, kind=DataOpKind.TRANSFER_TO_DEVICE, src_device_num=1,
                dest_device_num=0, src_addr=0, dest_addr=0, nbytes=8,
                start_time=0.0, end_time=1.0, content_hash=None,
            )
        with pytest.raises(ValueError):
            ct.append_target(
                seq=0, kind=TargetKind.TARGET, device_num=0,
                start_time=1.0, end_time=0.0,
            )

    def test_append_invalidates_object_cache(self):
        ct = ColumnarTrace.from_trace(_sample_trace())
        before = len(ct.data_op_events)
        ct.append_data_op(
            seq=99, kind=DataOpKind.ALLOC, src_device_num=1, dest_device_num=0,
            src_addr=0x1, dest_addr=0xF00, nbytes=8, start_time=9.0, end_time=9.1,
        )
        assert len(ct.data_op_events) == before + 1

    def test_end_time_is_max_over_all_events(self):
        # A long-running first event ends after the last appended event:
        # end_time must be the max over all events, not the last element.
        from repro.events.records import DataOpEvent

        def op(seq, kind, start, end):
            return DataOpEvent(
                seq=seq, kind=kind, src_device_num=1, dest_device_num=0,
                src_addr=0x1, dest_addr=0xA, nbytes=8,
                start_time=start, end_time=end,
            )

        trace = Trace(num_devices=1)
        trace.append_data_op_event(op(0, DataOpKind.ALLOC, 0.0, 10.0))
        trace.append_data_op_event(op(1, DataOpKind.DELETE, 1.0, 2.0))
        assert trace.end_time == pytest.approx(10.0)
        ct = ColumnarTrace.from_trace(trace)
        assert ct.end_time == pytest.approx(10.0)


class TestBinaryFormat:
    def test_binary_round_trip(self, tmp_path):
        trace = _sample_trace()
        ct = ColumnarTrace.from_trace(trace)
        path = tmp_path / "trace.npz"
        ct.save_binary(path)
        restored = ColumnarTrace.load_binary(path)
        assert restored.data_op_events == trace.data_op_events
        assert restored.target_events == trace.target_events
        assert restored.program_name == trace.program_name
        assert restored.total_runtime == pytest.approx(trace.total_runtime)

    def test_json_interchange_with_object_trace(self, tmp_path):
        ct = ColumnarTrace.from_trace(_sample_trace())
        path = tmp_path / "trace.json"
        ct.save(path)
        assert Trace.load(path).data_op_events == ct.data_op_events

    def test_load_trace_sniffs_formats(self, tmp_path):
        ct = ColumnarTrace.from_trace(_sample_trace())
        json_path = tmp_path / "t.json"
        bin_path = tmp_path / "t.npz"
        ct.save(json_path)
        ct.save_binary(bin_path)
        assert isinstance(load_trace(json_path), Trace)
        assert isinstance(load_trace(bin_path), ColumnarTrace)

    def test_corrupt_archive_rejected_with_value_error(self, tmp_path):
        ct = ColumnarTrace.from_trace(_sample_trace())
        path = tmp_path / "trace.npz"
        ct.save_binary(path)
        path.write_bytes(path.read_bytes()[:100])  # truncate: PK magic survives
        with pytest.raises(ValueError, match="not a valid columnar trace archive"):
            ColumnarTrace.load_binary(path)

    def test_unknown_version_rejected(self, tmp_path):
        ct = ColumnarTrace.from_trace(_sample_trace())
        path = tmp_path / "trace.npz"
        ct.save_binary(path)
        import io
        import json as json_mod
        import zipfile

        # Corrupt the version tag inside the archive's metadata entry.
        with np.load(path) as archive:
            arrays = {k: archive[k] for k in archive.files}
        meta = json_mod.loads(arrays["meta"].tobytes().decode("utf-8"))
        meta["format_version"] = COLUMNAR_FORMAT_VERSION + 999
        arrays["meta"] = np.frombuffer(
            json_mod.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        path.write_bytes(buffer.getvalue())
        with pytest.raises(ValueError, match="format version"):
            ColumnarTrace.load_binary(path)


class TestValidationAndSynth:
    def test_columnar_validation_passes_valid_trace(self):
        assert validate_trace(ColumnarTrace.from_trace(_sample_trace())) == []

    def test_columnar_validation_catches_out_of_order_events(self):
        ct = ColumnarTrace()
        ct.append_data_op(
            seq=0, kind=DataOpKind.ALLOC, src_device_num=1, dest_device_num=0,
            src_addr=0x1, dest_addr=0xA, nbytes=8, start_time=5.0, end_time=5.1,
        )
        ct.append_data_op(
            seq=1, kind=DataOpKind.DELETE, src_device_num=1, dest_device_num=0,
            src_addr=0x1, dest_addr=0xA, nbytes=8, start_time=1.0, end_time=1.1,
        )
        with pytest.raises(TraceValidationError, match="chronological"):
            validate_trace(ct)

    def test_columnar_validation_catches_live_address_reuse(self):
        ct = ColumnarTrace()
        for seq, t in ((0, 0.0), (1, 1.0)):
            ct.append_data_op(
                seq=seq, kind=DataOpKind.ALLOC, src_device_num=1, dest_device_num=0,
                src_addr=0x1, dest_addr=0xA, nbytes=8, start_time=t, end_time=t + 0.1,
            )
        with pytest.raises(TraceValidationError, match="reuses a live device address"):
            validate_trace(ct)

    def test_columnar_validation_matches_object_validation(self):
        trace = _sample_trace()
        ct = ColumnarTrace.from_trace(trace)
        assert validate_trace(trace, strict=False) == validate_trace(ct, strict=False)

    def test_synthetic_trace_is_valid_and_has_findings(self):
        ct = make_synthetic_columnar_trace(25_000)
        assert validate_trace(ct) == []
        from repro.core.analysis import analyze_trace

        counts = analyze_trace(ct).counts
        assert counts.duplicate_transfers > 0
        assert counts.round_trips > 0
        assert counts.repeated_allocations > 0
        assert counts.unused_allocations > 0
        assert counts.unused_transfers > 0
