"""Transport-protocol conformance suite plus fault-injection cases.

Every :class:`~repro.events.transport.ShardTransport` implementation runs
through the same parametrized contract tests — blob CRUD, rename, atomic
manifest publish, spec round-tripping — and through the store-level
round-trip (a :class:`ShardedTraceStore` written through any transport
reads back bit-identically).  The fake object store additionally gets the
fault-injection cases: a torn manifest write and a missing shard blob must
never leave a store whose manifest references incomplete data
(compaction's crash-safety invariant).
"""

from __future__ import annotations

import os
import pickle
import shutil
import uuid

import pytest

from repro.events.backends import load_trace
from repro.events.columnar import ColumnarTrace
from repro.events.store import (
    COMPACT_SCRATCH_PREFIX,
    MANIFEST_NAME,
    RetentionPolicy,
    ShardedTraceStore,
    TraceWriter,
    merge_shards,
    shard_trace,
)
from repro.events.stream import StreamStats
from repro.events.transport import (
    FakeObjectStoreTransport,
    LocalDirTransport,
    PrefixTransport,
    ShardTransport,
    TransportError,
    ZipArchiveTransport,
    list_blobs_under,
    open_transport,
    transport_from_spec,
    try_claim_blob,
    try_read_blob,
    zip_contains_manifest,
)

from tests.conftest import TraceBuilder

TRANSPORT_KINDS = ("local", "zip", "fake-object-store", "s3")

#: A real S3-compatible endpoint (MinIO in CI) — when set (and not the
#: literal ``moto``), the ``s3`` conformance leg runs against it instead of
#: the in-process moto mock.
S3_TEST_ENDPOINT_ENV = "OMPDATAPERF_S3_TEST_ENDPOINT"

try:
    import boto3  # noqa: F401 — presence probe only

    HAS_BOTO3 = True
except ImportError:  # pragma: no cover - exercised only without boto3
    HAS_BOTO3 = False


def _s3_transport(monkeypatch):
    """Yield a fresh s3 transport: real endpoint when configured, else moto."""
    if not HAS_BOTO3:
        pytest.skip("boto3 not installed")
    from repro.events.transport_s3 import S3ObjectStoreTransport

    prefix = f"conformance/{uuid.uuid4().hex[:12]}"
    endpoint = os.environ.get(S3_TEST_ENDPOINT_ENV)
    if endpoint and endpoint != "moto":
        transport = S3ObjectStoreTransport(
            "ompdataperf-tests", prefix, endpoint_url=endpoint, create=True
        )
        try:
            yield transport
        finally:
            for name in transport.list_blobs():
                transport.delete_blob(name)
        return
    moto = pytest.importorskip("moto")
    for var in ("AWS_ACCESS_KEY_ID", "AWS_SECRET_ACCESS_KEY", "AWS_SECURITY_TOKEN"):
        monkeypatch.setenv(var, "testing")
    monkeypatch.setenv("AWS_DEFAULT_REGION", "us-east-1")
    monkeypatch.delenv("OMPDATAPERF_S3_ENDPOINT", raising=False)
    with moto.mock_aws():
        yield S3ObjectStoreTransport("ompdataperf-tests", prefix, create=True)


@pytest.fixture(params=TRANSPORT_KINDS)
def transport(request, tmp_path, monkeypatch) -> ShardTransport:
    """A fresh empty transport of every kind, same contract expected."""
    if request.param == "local":
        yield LocalDirTransport(tmp_path / "blobs", create=True)
    elif request.param == "zip":
        yield ZipArchiveTransport(tmp_path / "blobs.zip", create=True)
    elif request.param == "fake-object-store":
        yield FakeObjectStoreTransport()
    else:
        yield from _s3_transport(monkeypatch)


def _sample_trace(cycles: int = 9, num_devices: int = 2) -> ColumnarTrace:
    b = TraceBuilder(num_devices=num_devices)
    for i in range(cycles):
        dev = i % num_devices
        host, daddr = 0x100 + i * 0x10, 0xA000 + i * 0x100
        b.alloc(host, daddr, device=dev)
        b.h2d(host, daddr, content_hash=1 + (i % 3), device=dev)
        b.kernel(device=dev, name=f"k{i}")
        b.d2h(host, daddr, content_hash=100 + i, device=dev)
        b.delete(host, daddr, device=dev)
    return ColumnarTrace.from_trace(b.build())


def _dicts_equal(a: ColumnarTrace, b: ColumnarTrace) -> bool:
    return a.to_trace().to_dict() == b.to_trace().to_dict()


# --------------------------------------------------------------------- #
# Protocol conformance (same assertions for every transport)
# --------------------------------------------------------------------- #
def test_blob_crud_round_trip(transport):
    assert transport.list_blobs() == []
    assert not transport.blob_exists("a.bin")

    transport.write_blob("a.bin", b"alpha")
    transport.write_blob("b.bin", b"beta")
    assert transport.read_blob("a.bin") == b"alpha"
    assert transport.blob_exists("a.bin")
    assert transport.blob_size("b.bin") == 4
    assert transport.list_blobs() == ["a.bin", "b.bin"]

    transport.delete_blob("a.bin")
    assert not transport.blob_exists("a.bin")
    assert transport.list_blobs() == ["b.bin"]
    transport.delete_blob("a.bin")  # idempotent


def test_overwrite_replaces_content(transport):
    transport.write_blob("x.bin", b"old-old-old")
    transport.write_blob("x.bin", b"new")
    assert transport.read_blob("x.bin") == b"new"
    assert transport.blob_size("x.bin") == 3
    assert transport.list_blobs() == ["x.bin"]


def test_rename_moves_and_overwrites(transport):
    transport.write_blob("src.bin", b"payload")
    transport.write_blob("dst.bin", b"stale")
    transport.rename_blob("src.bin", "dst.bin")
    assert not transport.blob_exists("src.bin")
    assert transport.read_blob("dst.bin") == b"payload"


def test_nested_blob_names(transport):
    transport.write_blob(".compact.tmp/shard-00000.npz", b"staged")
    assert transport.read_blob(".compact.tmp/shard-00000.npz") == b"staged"
    assert ".compact.tmp/shard-00000.npz" in transport.list_blobs()
    transport.rename_blob(".compact.tmp/shard-00000.npz", "shard-g0-00000.npz")
    assert transport.list_blobs() == ["shard-g0-00000.npz"]


def test_missing_blob_reads_raise(transport):
    with pytest.raises(TransportError):
        transport.read_blob("nope.bin")
    with pytest.raises(TransportError):
        transport.blob_size("nope.bin")


def test_invalid_blob_names_rejected(transport):
    for bad in ("/abs.bin", "../escape.bin", ""):
        with pytest.raises(ValueError):
            transport.read_blob(bad)


def test_spec_pickles_and_rebuilds(transport):
    transport.write_blob("shard.bin", b"data")
    spec = pickle.loads(pickle.dumps(transport.spec()))
    rebuilt = transport_from_spec(spec)
    assert rebuilt.read_blob("shard.bin") == b"data"


def test_prefix_transport_namespaces(transport):
    transport.write_blob("outside.bin", b"out")
    scratch = PrefixTransport(transport, "scratch")
    scratch.write_blob("inner.bin", b"in")
    assert scratch.list_blobs() == ["inner.bin"]
    assert transport.read_blob("scratch/inner.bin") == b"in"
    scratch.clear()
    assert scratch.list_blobs() == []
    assert transport.read_blob("outside.bin") == b"out"


# --------------------------------------------------------------------- #
# Store round-trip through every transport
# --------------------------------------------------------------------- #
def test_store_round_trips_bit_identically(transport):
    ct = _sample_trace()
    store = shard_trace(ct, transport, shard_events=7)
    assert store.num_shards > 1
    assert _dicts_equal(merge_shards(store), ct)
    # Reopen from scratch: everything (manifest + shards) lives in the
    # transport, nothing on the side.
    reopened = ShardedTraceStore.open(transport)
    assert reopened.summary() == ct.summary()
    assert _dicts_equal(merge_shards(reopened), ct)
    assert reopened.on_disk_bytes() > 0


def test_store_round_trip_identical_across_transports(tmp_path):
    ct = _sample_trace()
    merged = []
    for destination in (
        tmp_path / "t.store",
        tmp_path / "t.zip",
        FakeObjectStoreTransport(),
    ):
        store = shard_trace(ct, destination, shard_events=7)
        merged.append(merge_shards(store))
    assert _dicts_equal(merged[0], ct)
    for other in merged[1:]:
        assert _dicts_equal(merged[0], other)


def test_compact_with_retention_on_every_transport(transport):
    ct = _sample_trace(cycles=20)
    store = shard_trace(ct, transport, shard_events=4)
    fine = store.num_shards
    compacted = store.compact(shard_events=30, retention=RetentionPolicy(max_shards=2))
    assert compacted.num_shards <= 2 < fine
    # Folded manifest statistics match a recomputed scan of what is kept.
    recomputed = StreamStats.of_stream(compacted)
    assert compacted.num_data_op_events == recomputed.num_data_op_events
    assert compacted.num_target_events == recomputed.num_target_events
    assert compacted.data_op_kind_counts() == recomputed.data_op_kind_counts
    # No scratch staging survives a successful compaction.
    assert not any(
        name.startswith(COMPACT_SCRATCH_PREFIX) for name in transport.list_blobs()
    )


def test_writer_refuses_non_empty_transport(transport):
    transport.write_blob("junk.bin", b"x")
    with pytest.raises(ValueError, match="non-empty"):
        TraceWriter(transport)


# --------------------------------------------------------------------- #
# Sniffing
# --------------------------------------------------------------------- #
def test_zip_store_is_sniffed_by_load_trace(tmp_path):
    ct = _sample_trace()
    shard_trace(ct, tmp_path / "t.zip", shard_events=10)
    assert zip_contains_manifest(tmp_path / "t.zip")
    loaded = load_trace(tmp_path / "t.zip")
    assert isinstance(loaded, ShardedTraceStore)
    assert isinstance(loaded.transport, ZipArchiveTransport)
    assert _dicts_equal(merge_shards(loaded), ct)


def test_plain_npz_still_sniffs_as_columnar(tmp_path):
    ct = _sample_trace()
    ct.save_binary(tmp_path / "t.npz")
    assert not zip_contains_manifest(tmp_path / "t.npz")
    assert isinstance(load_trace(tmp_path / "t.npz"), ColumnarTrace)


def test_open_transport_sniffing(tmp_path):
    local = open_transport(tmp_path / "fresh.store", create=True)
    assert isinstance(local, LocalDirTransport)
    archive = open_transport(tmp_path / "fresh.zip", create=True)
    assert isinstance(archive, ZipArchiveTransport)
    assert open_transport(archive) is archive
    with pytest.raises(FileNotFoundError):
        open_transport(tmp_path / "missing.store")
    (tmp_path / "not-a-store.txt").write_text("hello")
    with pytest.raises(ValueError, match="not a store"):
        open_transport(tmp_path / "not-a-store.txt")


# --------------------------------------------------------------------- #
# Object-store semantics: latency and access-pattern accounting
# --------------------------------------------------------------------- #
def test_fake_object_store_counts_operations():
    remote = FakeObjectStoreTransport()
    ct = _sample_trace()
    store = shard_trace(ct, remote, shard_events=10)
    puts_after_write = remote.op_counts["put"]
    assert puts_after_write >= store.num_shards + 1  # shards + manifest

    # The aggregate surface answers from the manifest: zero shard gets.
    gets_before = remote.op_counts.get("get", 0)
    reopened = ShardedTraceStore.open(remote)
    assert reopened.summary() == ct.summary()
    assert remote.op_counts.get("get", 0) == gets_before + 1  # manifest only


def test_fake_object_store_latency_injection():
    remote = FakeObjectStoreTransport(latency=0.001)
    remote.write_blob("a.bin", b"x")
    import time

    t0 = time.perf_counter()
    for _ in range(5):
        remote.read_blob("a.bin")
    assert time.perf_counter() - t0 >= 5 * 0.001


# --------------------------------------------------------------------- #
# Fault injection: crash-safe compaction invariants
# --------------------------------------------------------------------- #
def _remote_store(cycles: int = 20, shard_events: int = 4):
    remote = FakeObjectStoreTransport()
    ct = _sample_trace(cycles=cycles)
    store = shard_trace(ct, remote, shard_events=shard_events)
    return remote, ct, store


def _assert_store_intact(remote, ct):
    """The crash-safety invariant: the live manifest references only
    complete shards, and the store still replays the original trace."""
    reopened = ShardedTraceStore.open(remote)
    for shard in reopened.shards:
        assert remote.blob_exists(shard.file)
    assert _dicts_equal(merge_shards(reopened), ct)


def test_torn_manifest_write_during_compact_keeps_old_store(monkeypatch):
    """A manifest publish that dies mid-write must not lose the store.

    The atomic-publish contract means a torn manifest write never commits
    (real transports stage and replace); model it as the put failing with
    nothing written.  Compaction has already staged and promoted the new
    shards at that point — but the OLD manifest still references the OLD
    shards, which are deleted last, so the store reopens exactly as
    before.
    """
    remote, ct, store = _remote_store()
    real_put = remote.put_object

    def put(key, body):
        if key == MANIFEST_NAME:
            raise TransportError("injected: torn manifest write")
        return real_put(key, body)

    monkeypatch.setattr(remote, "put_object", put)
    with pytest.raises(TransportError, match="torn manifest"):
        store.compact(shard_events=30)
    monkeypatch.undo()
    _assert_store_intact(remote, ct)


def test_torn_staged_shard_write_keeps_old_store():
    remote, ct, store = _remote_store()
    remote.tear_next_write(0.5)  # first staged shard write tears
    with pytest.raises(TransportError):
        store.compact(shard_events=30)
    _assert_store_intact(remote, ct)
    # The torn staged blob stays under the scratch prefix for inspection …
    assert any(
        name.startswith(COMPACT_SCRATCH_PREFIX) for name in remote.list_objects()
    )
    # … and the next compaction clears it and succeeds.
    compacted = ShardedTraceStore.open(remote).compact(shard_events=30)
    assert _dicts_equal(merge_shards(compacted), ct)
    assert not any(
        name.startswith(COMPACT_SCRATCH_PREFIX) for name in remote.list_objects()
    )


def test_missing_shard_blob_raises_cleanly():
    remote, ct, store = _remote_store()
    victim = store.shards[1].file
    remote.delete_object(victim)
    with pytest.raises(TransportError, match="no object"):
        merge_shards(store)
    # Compaction reads every shard, so it fails too — without touching
    # the manifest or the surviving shards.
    with pytest.raises(TransportError):
        ShardedTraceStore.open(remote).compact(shard_events=30)
    reopened = ShardedTraceStore.open(remote)
    assert [s.file for s in reopened.shards] == [s.file for s in store.shards]
    for shard in reopened.shards:
        if shard.file != victim:
            assert remote.blob_exists(shard.file)


def test_local_torn_manifest_write_keeps_old_store(tmp_path, monkeypatch):
    """The local transport's atomic publish: a crash between staging and
    replace leaves the OLD manifest bytes under the live name."""
    import os as os_module

    ct = _sample_trace(cycles=12)
    store = shard_trace(ct, tmp_path / "t.store", shard_events=4)

    real_replace = os_module.replace

    def replace(src, dst):
        if str(dst).endswith(MANIFEST_NAME):
            raise OSError("injected: crash before manifest replace")
        return real_replace(src, dst)

    monkeypatch.setattr("repro.events.transport.os.replace", replace)
    with pytest.raises(TransportError):
        store.compact(shard_events=30)
    monkeypatch.undo()

    reopened = ShardedTraceStore.open(tmp_path / "t.store")
    assert _dicts_equal(merge_shards(reopened), ct)


def test_zip_write_crash_leaves_archive_readable(tmp_path, monkeypatch):
    """A crash mid-write must never corrupt the archive's existing members.

    Every zip mutation stages a temp archive and publishes with one
    ``os.replace``; killing the process between staging and replace (here:
    making the replace itself fail) leaves the ORIGINAL archive byte-for-
    byte intact — no torn central directory, no lost members.
    """
    import os as os_module

    archive = ZipArchiveTransport(tmp_path / "a.zip", create=True)
    archive.write_blob("keep-1.bin", b"one")
    archive.write_blob("keep-2.bin", b"two")
    before = (tmp_path / "a.zip").read_bytes()

    def crash(src, dst):
        raise OSError("injected: crash before archive replace")

    monkeypatch.setattr("repro.events.transport.os.replace", crash)
    with pytest.raises(TransportError):
        archive.write_blob("new.bin", b"three")  # append path
    with pytest.raises(TransportError):
        archive.write_blob("keep-1.bin", b"clobber")  # overwrite path
    with pytest.raises(TransportError):
        archive.delete_blob("keep-2.bin")
    monkeypatch.undo()

    assert (tmp_path / "a.zip").read_bytes() == before
    assert archive.read_blob("keep-1.bin") == b"one"
    assert archive.list_blobs() == ["keep-1.bin", "keep-2.bin"]
    assert os_module.path.getsize(tmp_path / "a.zip") == len(before)


def test_zip_compact_crash_mid_swap_keeps_old_store(tmp_path, monkeypatch):
    """The zip cut-over is ONE apply_batch swap: fail it and the old store
    survives untouched (stronger than the per-op ordering guarantee)."""
    ct = _sample_trace(cycles=12)
    store = shard_trace(ct, tmp_path / "t.zip", shard_events=4)
    before = (tmp_path / "t.zip").read_bytes()

    def crash(src, dst):
        raise OSError("injected: crash before archive replace")

    monkeypatch.setattr("repro.events.transport.os.replace", crash)
    with pytest.raises(TransportError):
        store.compact(shard_events=30, retention=RetentionPolicy(max_shards=1))
    monkeypatch.undo()

    assert (tmp_path / "t.zip").read_bytes() == before
    reopened = ShardedTraceStore.open(tmp_path / "t.zip")
    assert _dicts_equal(merge_shards(reopened), ct)


def test_zip_apply_batch_combines_mutations(tmp_path):
    archive = ZipArchiveTransport(tmp_path / "a.zip", create=True)
    archive.write_blob("old.bin", b"old")
    archive.write_blob("move-me.bin", b"payload")
    archive.write_blob("clobbered.bin", b"stale")
    archive.apply_batch(
        writes={"fresh.bin": b"fresh", "lazy.bin": lambda: b"lazy"},
        renames={"move-me.bin": "clobbered.bin"},
        deletes=["old.bin", "never-existed.bin"],
    )
    assert archive.list_blobs() == ["clobbered.bin", "fresh.bin", "lazy.bin"]
    assert archive.read_blob("clobbered.bin") == b"payload"
    assert archive.read_blob("lazy.bin") == b"lazy"
    with pytest.raises(TransportError, match="no blob"):
        archive.apply_batch(renames={"ghost.bin": "x.bin"})


def test_fail_next_validates_operation():
    remote = FakeObjectStoreTransport()
    with pytest.raises(ValueError):
        remote.fail_next("teleport")
    with pytest.raises(ValueError):
        remote.tear_next_write(1.5)


# --------------------------------------------------------------------- #
# Queue idioms: prefix listing, tolerant reads, claim-by-rename
# --------------------------------------------------------------------- #
def test_list_blobs_under_filters_by_prefix(transport):
    transport.write_blob("tasks/task-00000.a000", b"t0")
    transport.write_blob("tasks/task-00001.a000", b"t1")
    transport.write_blob("results/task-00000.pkl", b"r0")
    transport.write_blob("manifest.json", b"{}")
    assert list_blobs_under(transport, "tasks/") == [
        "tasks/task-00000.a000",
        "tasks/task-00001.a000",
    ]
    assert list_blobs_under(transport, "results/") == ["results/task-00000.pkl"]
    assert list_blobs_under(transport, "nothing/") == []


def test_list_blobs_under_uses_server_side_prefix_on_object_stores():
    remote = FakeObjectStoreTransport()
    remote.write_blob("tasks/a", b"x")
    remote.write_blob("other/b", b"y")
    before = remote.op_counts.get("list", 0)
    assert list_blobs_under(remote, "tasks/") == ["tasks/a"]
    # One prefix-filtered list request, not a full listing plus filtering.
    assert remote.op_counts["list"] == before + 1


def test_try_read_blob_returns_none_for_missing(transport):
    assert try_read_blob(transport, "ghost.bin") is None
    transport.write_blob("real.bin", b"data")
    assert try_read_blob(transport, "real.bin") == b"data"


def test_try_claim_blob_single_winner(transport):
    transport.write_blob("tasks/task-00000.a000", b"payload")
    assert try_claim_blob(
        transport, "tasks/task-00000.a000", "claims/task-00000.a000.w1"
    )
    assert transport.read_blob("claims/task-00000.a000.w1") == b"payload"
    # The source is gone, so the losing claimant's rename fails cleanly.
    assert not try_claim_blob(
        transport, "tasks/task-00000.a000", "claims/task-00000.a000.w2"
    )
    assert not transport.blob_exists("claims/task-00000.a000.w2")


def test_local_dir_listing_survives_concurrent_teardown(tmp_path):
    """A store directory removed mid-listing lists as empty, not a crash
    (distributed workers race their scratch queue's teardown)."""
    local = LocalDirTransport(tmp_path / "gone", create=True)
    local.write_blob("a.bin", b"x")
    shutil.rmtree(tmp_path / "gone")
    assert local.list_blobs() == []


# --------------------------------------------------------------------- #
# Lost-race claim semantics: the fake and real object stores must agree
# --------------------------------------------------------------------- #
def test_task_queue_second_claimer_gets_none(transport):
    """The claim contract every transport must honour identically: the
    losing claimant of a task gets ``None`` — never an exception — whether
    the rename is an atomic ``os.replace`` (local), an archive swap (zip),
    or a non-atomic copy-then-delete (fake and real object stores).  The
    fake and real S3 transports running the SAME assertion is what keeps
    their lost-race semantics from drifting."""
    from repro.core.distributed import TaskQueue
    from repro.core.engine import PartitionTask

    queue = TaskQueue(transport)
    queue.publish_task(
        PartitionTask(index=0, lo=0, hi=1, data_op_offset=0, num_events=5)
    )
    (pending,) = queue.pending_task_names()
    winner = queue.claim(pending, "w1")
    assert winner is not None
    assert winner.task.num_events == 5
    # The task blob is gone: the second claimant loses cleanly.
    assert queue.claim(pending, "w2") is None
    assert not transport.blob_exists(f"claims/{winner.stem}.w2")


def test_claim_lost_race_never_raises_even_when_delete_lags():
    """On object stores the rename is copy-then-delete, so a claim can die
    between the halves (copy landed, delete failed).  The claimant must
    see that as an ordinary lost race — ``False``, never an exception —
    and the task stays claimable by the next worker."""
    remote = FakeObjectStoreTransport()
    remote.write_blob("tasks/task-00000.a000", b"payload")
    remote.fail_next("delete")
    assert not try_claim_blob(remote, "tasks/task-00000.a000", "claims/a.w1")
    # The source survived the failed rename, so another claimant wins it.
    assert try_claim_blob(remote, "tasks/task-00000.a000", "claims/a.w2")
    assert remote.read_blob("claims/a.w2") == b"payload"
