"""Tests for the event record types and alloc/delete pairing."""

import pytest

from repro.events.records import (
    AllocationPair,
    DataOpEvent,
    DataOpKind,
    TargetEvent,
    TargetKind,
    get_alloc_delete_pairs,
    sort_events_by_device,
)


def _transfer(seq=0, **kwargs):
    defaults = dict(
        seq=seq, kind=DataOpKind.TRANSFER_TO_DEVICE, src_device_num=1, dest_device_num=0,
        src_addr=0x1000, dest_addr=0x2000, nbytes=64, start_time=0.0, end_time=1.0,
        content_hash=42,
    )
    defaults.update(kwargs)
    return DataOpEvent(**defaults)


class TestDataOpEvent:
    def test_duration(self):
        assert _transfer(start_time=1.0, end_time=3.5).duration == pytest.approx(2.5)

    def test_transfer_requires_hash(self):
        with pytest.raises(ValueError):
            _transfer(content_hash=None)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            _transfer(nbytes=-1)

    def test_time_ordering_enforced(self):
        with pytest.raises(ValueError):
            _transfer(start_time=2.0, end_time=1.0)

    def test_kind_predicates(self):
        assert _transfer().is_transfer
        alloc = _transfer(kind=DataOpKind.ALLOC, content_hash=None)
        assert alloc.is_alloc and not alloc.is_transfer
        delete = _transfer(kind=DataOpKind.DELETE, content_hash=None)
        assert delete.is_delete

    def test_dict_round_trip(self):
        event = _transfer(seq=7, variable="a")
        assert DataOpEvent.from_dict(event.to_dict()) == event


class TestTargetEvent:
    def test_kernel_predicate(self):
        kernel = TargetEvent(seq=0, kind=TargetKind.TARGET, device_num=0,
                             start_time=0.0, end_time=1.0)
        update = TargetEvent(seq=1, kind=TargetKind.UPDATE, device_num=0,
                             start_time=1.0, end_time=2.0)
        assert kernel.executes_kernel
        assert not update.executes_kernel

    def test_dict_round_trip(self):
        event = TargetEvent(seq=3, kind=TargetKind.ENTER_DATA, device_num=1,
                            start_time=0.5, end_time=0.6, name="region")
        assert TargetEvent.from_dict(event.to_dict()) == event

    def test_time_ordering_enforced(self):
        with pytest.raises(ValueError):
            TargetEvent(seq=0, kind=TargetKind.TARGET, device_num=0,
                        start_time=1.0, end_time=0.0)


class TestAllocationPair:
    def _alloc(self, seq=0, addr=0x2000):
        return DataOpEvent(seq=seq, kind=DataOpKind.ALLOC, src_device_num=1,
                           dest_device_num=0, src_addr=0x1000, dest_addr=addr,
                           nbytes=256, start_time=float(seq), end_time=float(seq) + 0.5)

    def _delete(self, seq=1, addr=0x2000):
        return DataOpEvent(seq=seq, kind=DataOpKind.DELETE, src_device_num=1,
                           dest_device_num=0, src_addr=0x1000, dest_addr=addr,
                           nbytes=256, start_time=float(seq), end_time=float(seq) + 0.25)

    def test_requires_matching_kinds(self):
        with pytest.raises(ValueError):
            AllocationPair(alloc_event=self._delete())
        with pytest.raises(ValueError):
            AllocationPair(alloc_event=self._alloc(), delete_event=self._alloc(seq=1))

    def test_lifetime_with_and_without_delete(self):
        pair = AllocationPair(self._alloc(0), self._delete(5))
        assert pair.lifetime(trace_end=100.0) == (0.0, 5.25)
        open_pair = AllocationPair(self._alloc(0))
        assert open_pair.lifetime(trace_end=100.0) == (0.0, 100.0)

    def test_duration_sums_both_operations(self):
        pair = AllocationPair(self._alloc(0), self._delete(5))
        assert pair.duration == pytest.approx(0.75)


class TestGetAllocDeletePairs:
    def test_pairs_in_order(self):
        builder = []
        a1 = DataOpEvent(seq=0, kind=DataOpKind.ALLOC, src_device_num=1, dest_device_num=0,
                         src_addr=0x10, dest_addr=0xA0, nbytes=8, start_time=0, end_time=1)
        d1 = DataOpEvent(seq=1, kind=DataOpKind.DELETE, src_device_num=1, dest_device_num=0,
                         src_addr=0x10, dest_addr=0xA0, nbytes=8, start_time=2, end_time=3)
        a2 = DataOpEvent(seq=2, kind=DataOpKind.ALLOC, src_device_num=1, dest_device_num=0,
                         src_addr=0x10, dest_addr=0xA0, nbytes=8, start_time=4, end_time=5)
        pairs = get_alloc_delete_pairs([a1, d1, a2])
        assert len(pairs) == 2
        assert pairs[0].alloc_event == a1 and pairs[0].delete_event == d1
        assert pairs[1].alloc_event == a2 and pairs[1].delete_event is None

    def test_unmatched_delete_ignored(self):
        d = DataOpEvent(seq=0, kind=DataOpKind.DELETE, src_device_num=1, dest_device_num=0,
                        src_addr=0x10, dest_addr=0xA0, nbytes=8, start_time=0, end_time=1)
        assert get_alloc_delete_pairs([d]) == []

    def test_same_address_different_devices_kept_separate(self):
        a0 = DataOpEvent(seq=0, kind=DataOpKind.ALLOC, src_device_num=2, dest_device_num=0,
                         src_addr=0x10, dest_addr=0xA0, nbytes=8, start_time=0, end_time=1)
        a1 = DataOpEvent(seq=1, kind=DataOpKind.ALLOC, src_device_num=2, dest_device_num=1,
                         src_addr=0x10, dest_addr=0xA0, nbytes=8, start_time=1, end_time=2)
        d0 = DataOpEvent(seq=2, kind=DataOpKind.DELETE, src_device_num=2, dest_device_num=1,
                         src_addr=0x10, dest_addr=0xA0, nbytes=8, start_time=3, end_time=4)
        pairs = get_alloc_delete_pairs([a0, a1, d0])
        by_dev = {p.device_num: p for p in pairs}
        assert by_dev[0].delete_event is None
        assert by_dev[1].delete_event == d0


def test_sort_events_by_device_buckets_and_drops_host():
    host = 2
    kernel0 = TargetEvent(seq=0, kind=TargetKind.TARGET, device_num=0, start_time=0, end_time=1)
    kernel1 = TargetEvent(seq=1, kind=TargetKind.TARGET, device_num=1, start_time=1, end_time=2)
    to_host = _transfer(seq=2, kind=DataOpKind.TRANSFER_FROM_DEVICE,
                        src_device_num=0, dest_device_num=host)
    buckets = sort_events_by_device([kernel0, kernel1, to_host], num_devices=2)
    assert buckets[0] == [kernel0]
    assert buckets[1] == [kernel1]
