"""The adversarial generator: deterministic, valid, genuinely hostile.

The fuzz harness is only as good as its inputs, so these tests pin the
three properties :mod:`repro.events.hostile` promises: the same seed
always yields the same trace (failures reproduce), every trace is valid
per :func:`validate_trace` (the differential oracle's contract), and the
advertised hostile features — deep alloc nesting, split round-trip legs,
duplicate storms, kernel-only stretches, empty shards, mixed formats —
actually appear.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.events.columnar import CODE_ALLOC, CODE_DELETE, CODE_TO_DEVICE
from repro.events.hostile import make_hostile_trace, write_hostile_store
from repro.events.store import ShardedTraceStore, merge_shards
from repro.events.validation import validate_trace


def test_same_seed_same_trace():
    a = make_hostile_trace(4000, seed=99)
    b = make_hostile_trace(4000, seed=99)
    assert len(a) == len(b)
    assert np.array_equal(a.do_seq, b.do_seq)
    assert np.array_equal(a.do_content_hash, b.do_content_hash)
    assert np.array_equal(a.do_start_time, b.do_start_time)
    assert np.array_equal(a.tgt_seq, b.tgt_seq)
    assert a.num_devices == b.num_devices


def test_different_seeds_differ():
    a = make_hostile_trace(4000, seed=1)
    b = make_hostile_trace(4000, seed=2)
    assert len(a) != len(b) or not np.array_equal(a.do_seq, b.do_seq)


@pytest.mark.parametrize("seed", [0, 1, 7, 123, 20260808])
def test_traces_are_valid_across_seeds(seed):
    trace = make_hostile_trace(3000, seed=seed)
    validate_trace(trace)  # raises on any contract violation
    assert len(trace) >= 3000


def test_size_scales():
    small = make_hostile_trace(500, seed=5)
    large = make_hostile_trace(20_000, seed=5)
    assert len(large) > 10 * len(small)


def test_hostile_features_present():
    trace = make_hostile_trace(20_000, seed=42)
    kind = trace.do_kind

    # Deep nesting: peak live allocations well beyond any friendly trace.
    alloc_delta = np.where(kind == CODE_ALLOC, 1, np.where(kind == CODE_DELETE, -1, 0))
    assert int(np.cumsum(alloc_delta).max()) >= 50

    # Duplicate storms: the pool hashes recur many times.
    h2d = trace.do_content_hash[kind == CODE_TO_DEVICE]
    values, counts = np.unique(h2d, return_counts=True)
    assert counts.max() >= 20

    # Same-timestamp bursts: repeated start times in the data-op stream.
    assert (np.diff(trace.do_start_time) == 0).any()
    # ... while remaining chronologically ordered, as validity requires.
    assert (np.diff(trace.do_start_time) >= 0).all()

    # Kernel-only stretches exist (long runs with no data op between).
    assert trace.num_target_events > 0


def test_hostile_store_layout(tmp_path):
    trace = make_hostile_trace(6000, seed=3)
    store = write_hostile_store(
        trace, tmp_path / "store", seed=3, min_shard_events=64, max_shard_events=700
    )
    # Random cuts: shard sizes genuinely vary.
    sizes = [s.num_events for s in store.shards if s.num_events]
    assert len(set(sizes)) > 1
    # Mixed formats and at least one spliced empty shard.
    assert {s.format for s in store.shards} == {"npz", "odpf"}
    assert any(s.num_events == 0 for s in store.shards)
    # The layout is hostile; the content is not — bit-identical round trip.
    merged = merge_shards(store)
    assert merged.to_trace().to_dict() == trace.to_trace().to_dict()
    # And the store reopens from disk with the spliced manifest intact.
    reopened = ShardedTraceStore.open(tmp_path / "store")
    assert reopened.num_shards == store.num_shards


def test_hostile_store_is_deterministic(tmp_path):
    t = make_hostile_trace(3000, seed=8)
    a = write_hostile_store(t, tmp_path / "a", seed=8)
    b = write_hostile_store(t, tmp_path / "b", seed=8)
    assert [s.to_dict() for s in a.shards] == [s.to_dict() for s in b.shards]


def test_invalid_event_count_rejected():
    with pytest.raises(ValueError):
        make_hostile_trace(0, seed=1)
