"""Mixed-format store and flat-shard fault-injection tests.

A store manifest records the format of every shard individually, so a
store migrated halfway (or extended by a newer writer) legitimately holds
legacy ``.npz`` and flat ``.odpf`` shards side by side.  These tests pin
the compatibility contract: a mixed-format store replays bit-identically
through all five analysis legs (object oracle, columnar, serial
streaming, process-partitioned, distributed) over all three transports
(local directory, zip archive, object store), and a torn ``.odpf`` write
can never reach the live manifest — the flat payload's extent check
rejects any truncated buffer even though the commit-marker magic sits at
offset zero and therefore survives a torn prefix.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.analysis import analyze_stream, analyze_trace
from repro.core.distributed import DistributedEngine
from repro.events.columnar import FLAT_MAGIC, ColumnarTrace
from repro.events.store import (
    COMPACT_SCRATCH_PREFIX,
    SHARD_FORMAT_NPZ,
    SHARD_FORMAT_ODPF,
    ShardedTraceStore,
    TraceWriter,
    merge_shards,
    shard_trace,
)
from repro.events.stream import as_event_stream
from repro.events.transport import FakeObjectStoreTransport, TransportError

from tests.conftest import TraceBuilder

SHARD_EVENTS = 7


def _sample_trace(cycles: int = 12, num_devices: int = 2):
    b = TraceBuilder(num_devices=num_devices)
    for i in range(cycles):
        dev = i % num_devices
        host, daddr = 0x100 + i * 0x10, 0xA000 + i * 0x100
        b.alloc(host, daddr, device=dev)
        b.h2d(host, daddr, content_hash=1 + (i % 3), device=dev)
        b.kernel(device=dev, name=f"k{i}")
        b.d2h(host, daddr, content_hash=100 + i, device=dev)
        b.delete(host, daddr, device=dev)
    return b.build()


def _mixed_store(trace, destination) -> ShardedTraceStore:
    """Write ``trace`` as a store whose shards alternate npz / odpf."""
    stream = as_event_stream(ColumnarTrace.from_trace(trace), SHARD_EVENTS)
    writer = TraceWriter(
        destination,
        shard_events=SHARD_EVENTS,
        num_devices=stream.num_devices,
        program_name=stream.program_name,
    )
    formats = itertools.cycle((SHARD_FORMAT_NPZ, SHARD_FORMAT_ODPF))
    for batch in stream.batches():
        writer.shard_format = next(formats)
        writer.write_batch(batch)
        writer.flush()  # cut the shard here so the next format flip lands
    return writer.close(total_runtime=stream.total_runtime)


def _destination(kind: str, tmp_path):
    if kind == "local":
        return tmp_path / "t.store"
    if kind == "zip":
        return tmp_path / "t.zip"
    return FakeObjectStoreTransport()


def _dicts_equal(a: ColumnarTrace, b: ColumnarTrace) -> bool:
    return a.to_trace().to_dict() == b.to_trace().to_dict()


def _assert_reports_equal(obj_report, report):
    assert obj_report.counts == report.counts
    assert obj_report.potential == report.potential
    assert obj_report.duplicate_groups == report.duplicate_groups
    assert obj_report.round_trip_groups == report.round_trip_groups
    assert obj_report.repeated_alloc_groups == report.repeated_alloc_groups
    assert obj_report.unused_allocations == report.unused_allocations
    assert obj_report.unused_transfers == report.unused_transfers


# --------------------------------------------------------------------- #
# Mixed-format compatibility
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", ["local", "zip", "object"])
def test_mixed_format_store_round_trips_bit_identically(kind, tmp_path):
    trace = _sample_trace()
    ct = ColumnarTrace.from_trace(trace)
    store = _mixed_store(trace, _destination(kind, tmp_path))

    counts = store.shard_format_counts()
    assert counts.get(SHARD_FORMAT_NPZ, 0) > 0
    assert counts.get(SHARD_FORMAT_ODPF, 0) > 0
    assert _dicts_equal(merge_shards(store), ct)

    # Reopening goes through manifest parsing (per-shard format field).
    reopened = ShardedTraceStore.open(store.transport)
    assert [s.format for s in reopened.shards] == [s.format for s in store.shards]
    assert _dicts_equal(merge_shards(reopened), ct)


@pytest.mark.parametrize("kind", ["local", "zip", "object"])
def test_mixed_format_store_identical_across_five_legs(kind, tmp_path):
    trace = _sample_trace()
    ct = ColumnarTrace.from_trace(trace)
    store = _mixed_store(trace, _destination(kind, tmp_path))

    obj_report = analyze_trace(trace)
    _assert_reports_equal(obj_report, analyze_trace(ct))
    _assert_reports_equal(obj_report, analyze_stream(store))
    _assert_reports_equal(
        obj_report, analyze_stream(store, engine="process", jobs=2)
    )
    engine = DistributedEngine(
        worker_mode="thread", poll_interval=0.01, run_timeout=120.0
    )
    _assert_reports_equal(obj_report, analyze_stream(store, engine=engine, jobs=2))


def test_legacy_manifest_without_format_field_still_opens(tmp_path):
    """Manifests written before the format field default by extension."""
    import json

    from repro.events.store import MANIFEST_NAME

    trace = _sample_trace()
    ct = ColumnarTrace.from_trace(trace)
    store = shard_trace(ct, tmp_path / "t.store", shard_events=SHARD_EVENTS,
                        shard_format="npz")
    manifest_path = store.path / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text())
    for entry in manifest["shards"]:
        del entry["format"]
    manifest_path.write_text(json.dumps(manifest))

    reopened = ShardedTraceStore.open(store.path)
    assert all(s.format == SHARD_FORMAT_NPZ for s in reopened.shards)
    assert _dicts_equal(merge_shards(reopened), ct)


# --------------------------------------------------------------------- #
# Torn flat-shard writes
# --------------------------------------------------------------------- #
def test_torn_odpf_shard_write_keeps_old_store():
    """A torn ``.odpf`` staged write must never dangle from the manifest.

    The flat payload's magic doubles as the commit marker and lives at
    offset ZERO — an object-store put that commits a torn prefix keeps
    the magic while losing column bytes.  The extent check in
    ``from_shared`` must reject that buffer, and compaction's staging
    discipline must leave the old store untouched.
    """
    remote = FakeObjectStoreTransport()
    trace = _sample_trace()
    ct = ColumnarTrace.from_trace(trace)
    store = shard_trace(ct, remote, shard_events=SHARD_EVENTS, shard_format="npz")

    remote.tear_next_write(0.5)  # first staged .odpf shard write tears
    with pytest.raises(TransportError):
        store.compact(shard_events=30, shard_format="odpf")

    # Old manifest, old shards, same replay.
    reopened = ShardedTraceStore.open(remote)
    for shard in reopened.shards:
        assert shard.format == SHARD_FORMAT_NPZ
        assert remote.blob_exists(shard.file)
    assert _dicts_equal(merge_shards(reopened), ct)

    # The torn scratch blob kept its magic but not its column data: the
    # payload parser must call it truncated, not silently short-read.
    torn = [
        name
        for name in remote.list_objects()
        if name.startswith(COMPACT_SCRATCH_PREFIX)
    ]
    assert torn
    torn_bytes = remote.read_blob(torn[0])
    assert torn_bytes[: len(FLAT_MAGIC)] == FLAT_MAGIC
    with pytest.raises(ValueError, match="truncated flat trace payload"):
        ColumnarTrace.from_shared(memoryview(torn_bytes), source="torn")

    # The next compaction clears the scratch leftovers and succeeds.
    compacted = ShardedTraceStore.open(remote).compact(
        shard_events=30, shard_format="odpf"
    )
    assert all(s.format == SHARD_FORMAT_ODPF for s in compacted.shards)
    assert _dicts_equal(merge_shards(compacted), ct)


def test_truncated_flat_payload_rejected_at_every_cut(tmp_path):
    ct = ColumnarTrace.from_trace(_sample_trace(cycles=3, num_devices=1))
    payload = ct.to_flat_payload()
    # The payload tail is alignment padding, so "one byte short" can still
    # cover every column; cutting a whole 64-byte alignment block cannot.
    for cut in (len(FLAT_MAGIC), 16, len(payload) // 2, len(payload) - 64):
        with pytest.raises(
            ValueError, match="(truncated|too small for a) flat trace payload"
        ):
            ColumnarTrace.from_shared(memoryview(payload[:cut]), source="cut")
    # The full buffer still parses — the cuts above are the only problem.
    assert _dicts_equal(
        ColumnarTrace.from_shared(memoryview(payload), source="full"), ct
    )


def test_truncated_odpf_shard_file_fails_cleanly(tmp_path):
    """A flat shard truncated on disk errors out of the mmap hot path."""
    store = shard_trace(
        ColumnarTrace.from_trace(_sample_trace()),
        tmp_path / "t.store",
        shard_events=SHARD_EVENTS,
    )
    victim = store.path / store.shards[0].file
    victim.write_bytes(victim.read_bytes()[: victim.stat().st_size // 2])
    fresh = ShardedTraceStore.open(store.path)
    with pytest.raises(ValueError, match="truncated flat trace payload"):
        fresh.load_batch(0)
