"""Tests for the sharded trace store, the writer and the stream utilities."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.events.columnar import ColumnarTrace
from repro.events.records import DataOpKind, TargetKind
from repro.events.store import (
    MANIFEST_NAME,
    RetentionPolicy,
    ShardedTraceStore,
    TraceWriter,
    merge_shards,
    shard_trace,
)
from repro.events.stream import (
    SlicedTraceStream,
    StreamStats,
    as_event_stream,
    materialize_data_op_events,
    merge_stream,
    trace_like_view,
)
from repro.events.backends import available_backends, load_trace
from repro.events.validation import TraceValidationError, validate_stream

from tests.conftest import TraceBuilder


def _sample_trace(cycles: int = 9, num_devices: int = 2) -> ColumnarTrace:
    b = TraceBuilder(num_devices=num_devices)
    for i in range(cycles):
        dev = i % num_devices
        host, daddr = 0x100 + i * 0x10, 0xA000 + i * 0x100
        b.alloc(host, daddr, device=dev)
        b.h2d(host, daddr, content_hash=1 + (i % 3), device=dev)
        b.kernel(device=dev, name=f"k{i}")
        b.d2h(host, daddr, content_hash=100 + i, device=dev)
        b.delete(host, daddr, device=dev)
    return ColumnarTrace.from_trace(b.build())


def _dicts_equal(a: ColumnarTrace, b: ColumnarTrace) -> bool:
    return a.to_trace().to_dict() == b.to_trace().to_dict()


# --------------------------------------------------------------------- #
# Partitioning and compaction
# --------------------------------------------------------------------- #
def test_store_partitions_are_contiguous_and_balanced(tmp_path):
    ct = _sample_trace(cycles=24)
    store = shard_trace(ct, tmp_path / "t.store", shard_events=8)
    parts = store.partitions(4)
    assert len(parts) == 4
    assert parts[0].lo == 0 and parts[-1].hi == store.num_shards
    # Contiguous cover, correct data-op offsets, events accounted for.
    do_offset = 0
    for part in parts:
        assert part.data_op_offset == do_offset
        for batch in part.batches():
            do_offset += batch.num_data_op_events
    assert do_offset == store.num_data_op_events
    assert sum(p.num_events for p in parts) == len(store)

    # Reassembling the partitions in order reproduces the trace.
    merged = ColumnarTrace(
        num_devices=store.num_devices,
        program_name=store.program_name,
        total_runtime=store.total_runtime,
    )
    for part in parts:
        for batch in part.batches():
            merged.extend_from(batch)
    assert _dicts_equal(merged, ct)

    assert store.partitions(1) == [store]


def test_compact_coalesces_and_rewrites_manifest(tmp_path):
    ct = _sample_trace(cycles=20)
    store = shard_trace(ct, tmp_path / "t.store", shard_events=3)
    fine_shards = store.num_shards
    summary = store.summary()

    compacted = store.compact(shard_events=25)
    assert compacted.path == store.path
    assert compacted.num_shards < fine_shards
    assert compacted.summary() == summary
    assert _dicts_equal(merge_shards(compacted), ct)

    # The directory holds exactly the new shards plus the manifest —
    # stale fine shards and the scratch directory are gone.
    on_disk = sorted(p.name for p in (tmp_path / "t.store").iterdir())
    assert on_disk == sorted(
        [MANIFEST_NAME] + [s.file for s in compacted.shards]
    )

    # Re-opening from disk sees the rewritten manifest.
    reopened = ShardedTraceStore.open(tmp_path / "t.store")
    assert reopened.num_shards == compacted.num_shards
    assert reopened.summary() == summary


def test_compact_can_split_oversized_shards(tmp_path):
    ct = _sample_trace(cycles=20)
    store = shard_trace(ct, tmp_path / "t.store", shard_events=10**6)
    assert store.num_shards == 1
    split = store.compact(shard_events=16)
    assert split.num_shards > 1
    assert _dicts_equal(merge_shards(split), ct)


def test_compact_drops_empty_shards(tmp_path):
    ct = _sample_trace(cycles=6)
    store = shard_trace(ct, tmp_path / "t.store", shard_events=5)
    # Forge an empty shard in the middle of the manifest, as a damaged or
    # hand-built store might contain.
    empty = ColumnarTrace(num_devices=store.num_devices)
    empty.save_binary(tmp_path / "t.store" / "shard-empty.npz")
    manifest_path = tmp_path / "t.store" / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    manifest["shards"].insert(1, {
        "file": "shard-empty.npz",
        "num_data_op_events": 0,
        "num_target_events": 0,
        "end_time": 0.0,
    })
    manifest_path.write_text(json.dumps(manifest), encoding="utf-8")

    store = ShardedTraceStore.open(tmp_path / "t.store")
    with_empty = store.num_shards
    compacted = store.compact(shard_events=5)
    assert compacted.num_shards < with_empty
    assert all(s.num_events > 0 for s in compacted.shards)
    assert _dicts_equal(merge_shards(compacted), ct)


def _assert_manifest_matches_rescan(store: ShardedTraceStore) -> None:
    """Folded manifest statistics must equal a recomputed scan of the shards."""
    recomputed = StreamStats.of_stream(store)
    assert store.num_data_op_events == recomputed.num_data_op_events
    assert store.num_target_events == recomputed.num_target_events
    assert store.end_time == recomputed.end_time
    assert store.data_op_kind_counts() == recomputed.data_op_kind_counts
    assert store.target_kind_counts() == recomputed.target_kind_counts
    stats = store.summary()
    assert stats["bytes_transferred"] == recomputed.bytes_transferred
    assert stats["num_kernel_events"] == recomputed.num_kernel_events
    assert stats["transfer_time"] == pytest.approx(recomputed.transfer_time)
    assert stats["kernel_time"] == pytest.approx(recomputed.kernel_time)


def test_retention_policy_validation():
    with pytest.raises(ValueError, match="max_age"):
        RetentionPolicy(max_age=-1.0)
    with pytest.raises(ValueError, match="max_total_bytes"):
        RetentionPolicy(max_total_bytes=-1)
    with pytest.raises(ValueError, match="max_shards"):
        RetentionPolicy(max_shards=-2)
    with pytest.raises(ValueError, match="unknown event kind"):
        RetentionPolicy(keep_kinds={"warp-drive"})
    assert RetentionPolicy().is_null()
    assert not RetentionPolicy(max_age=1.0).is_null()


def test_compact_retain_max_age_drops_old_events(tmp_path):
    ct = _sample_trace(cycles=12)
    store = shard_trace(ct, tmp_path / "t.store", shard_events=5)
    horizon = store.end_time * 0.4  # keep roughly the newest 40% of event time
    cutoff = store.end_time - horizon

    compacted = store.compact(
        shard_events=5, retention=RetentionPolicy(max_age=horizon)
    )
    merged = merge_shards(compacted)
    assert 0 < len(merged) < len(ct)
    assert float(merged.do_end_time.min(initial=np.inf)) >= cutoff
    assert float(merged.tgt_end_time.min(initial=np.inf)) >= cutoff
    # Exactly the in-horizon events survive, in order.  (The recorded
    # total_runtime is a property of the run, not of the retained subset,
    # so retention preserves it.)
    keep_do = np.flatnonzero(ct.do_end_time >= cutoff)
    keep_tgt = np.flatnonzero(ct.tgt_end_time >= cutoff)
    expected = ct.select_rows(keep_do, keep_tgt)
    expected.total_runtime = compacted.total_runtime
    assert compacted.total_runtime == ct.total_runtime
    assert _dicts_equal(merged, expected)
    _assert_manifest_matches_rescan(compacted)


def test_compact_retain_keep_kinds(tmp_path):
    ct = _sample_trace(cycles=8)
    store = shard_trace(ct, tmp_path / "t.store", shard_events=6)
    compacted = store.compact(
        retention=RetentionPolicy(keep_kinds={"transfer_to_device", "transfer_from_device", "target"})
    )
    merged = merge_shards(compacted)
    kinds = compacted.data_op_kind_counts()
    assert kinds["alloc"] == 0 and kinds["delete"] == 0
    assert kinds["transfer_to_device"] == 8 and kinds["transfer_from_device"] == 8
    assert compacted.target_kind_counts()["target"] == 8
    assert len(merged) == 24
    _assert_manifest_matches_rescan(compacted)


def test_compact_retain_max_shards_keeps_newest(tmp_path):
    ct = _sample_trace(cycles=20)
    store = shard_trace(ct, tmp_path / "t.store", shard_events=8)
    original_end = store.end_time
    compacted = store.compact(
        shard_events=8, retention=RetentionPolicy(max_shards=2)
    )
    assert compacted.num_shards == 2
    merged = merge_shards(compacted)
    # The kept events are the newest contiguous suffix of the trace.
    n_do, n_tgt = merged.num_data_op_events, merged.num_target_events
    suffix = ct.slice_rows(
        ct.num_data_op_events - n_do, ct.num_data_op_events,
        ct.num_target_events - n_tgt, ct.num_target_events,
    )
    suffix.total_runtime = merged.total_runtime
    assert _dicts_equal(merged, suffix)
    assert compacted.end_time == original_end
    _assert_manifest_matches_rescan(compacted)


def test_compact_retain_max_bytes_budget(tmp_path):
    ct = _sample_trace(cycles=24)
    store = shard_trace(ct, tmp_path / "t.store", shard_events=8)
    shard_bytes = [
        (store.path / s.file).stat().st_size for s in store.shards
    ]
    # Budget for roughly two shards of the re-sharded store.
    budget = 2 * max(shard_bytes) + 1
    compacted = store.compact(
        shard_events=8, retention=RetentionPolicy(max_total_bytes=budget)
    )
    assert 0 < compacted.num_shards < store.num_shards
    kept_bytes = sum(
        (compacted.path / s.file).stat().st_size for s in compacted.shards
    )
    assert kept_bytes <= budget
    _assert_manifest_matches_rescan(compacted)

    # A budget smaller than any single shard empties the store (newest
    # data cannot be partially kept at sub-shard granularity).
    emptied = compacted.compact(
        shard_events=8, retention=RetentionPolicy(max_total_bytes=1)
    )
    assert emptied.num_shards == 0
    assert len(emptied) == 0


def test_compact_retention_composes(tmp_path):
    ct = _sample_trace(cycles=16)
    store = shard_trace(ct, tmp_path / "t.store", shard_events=4)
    compacted = store.compact(
        shard_events=4,
        retention=RetentionPolicy(
            max_age=store.end_time,  # everything in horizon
            keep_kinds=frozenset({"transfer_to_device", "target"}),
            max_shards=3,
        ),
    )
    assert compacted.num_shards <= 3
    merged = merge_shards(compacted)
    assert set(np.unique(merged.do_kind)) <= {1}  # to_device code only
    _assert_manifest_matches_rescan(compacted)
    # Round-trips again after retention: still a perfectly valid store.
    assert _dicts_equal(merge_shards(ShardedTraceStore.open(store.path)), merged)


def test_compact_empty_store(tmp_path):
    store = shard_trace(
        ColumnarTrace(num_devices=1), tmp_path / "empty.store", shard_events=4
    )
    compacted = store.compact(shard_events=8)
    assert compacted.num_shards == 0
    assert len(compacted) == 0


# --------------------------------------------------------------------- #
# Store round-tripping
# --------------------------------------------------------------------- #
def test_shard_and_merge_round_trip(tmp_path):
    ct = _sample_trace()
    store = shard_trace(ct, tmp_path / "t.store", shard_events=7)
    assert store.num_shards == -(-len(ct) // 7)
    assert _dicts_equal(merge_shards(store), ct)


def test_store_is_sniffed_by_load_trace(tmp_path):
    ct = _sample_trace()
    shard_trace(ct, tmp_path / "t.store", shard_events=10)
    loaded = load_trace(tmp_path / "t.store")
    assert isinstance(loaded, ShardedTraceStore)
    assert "sharded" in available_backends()


def test_store_summary_needs_no_shard_reads(tmp_path, monkeypatch):
    ct = _sample_trace()
    store = shard_trace(ct, tmp_path / "t.store", shard_events=10)

    def _boom(*args, **kwargs):
        raise AssertionError("summary() must not read shards")

    monkeypatch.setattr(ColumnarTrace, "load_binary", _boom)
    reopened = ShardedTraceStore.open(tmp_path / "t.store")
    assert reopened.summary() == ct.summary()
    assert reopened.data_op_kind_counts()["alloc"] == 9
    assert reopened.target_kind_counts()["target"] == 9
    assert reopened.on_disk_bytes() > 0
    assert len(reopened) == len(ct)


def test_store_rejects_unknown_manifest_version(tmp_path):
    ct = _sample_trace()
    shard_trace(ct, tmp_path / "t.store", shard_events=10)
    manifest_path = tmp_path / "t.store" / MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    manifest["format_version"] = 999
    manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
    with pytest.raises(ValueError, match="unsupported store format version"):
        ShardedTraceStore.open(tmp_path / "t.store")


def test_writer_refuses_non_empty_directory(tmp_path):
    (tmp_path / "occupied").mkdir()
    (tmp_path / "occupied" / "junk").write_text("x")
    with pytest.raises(ValueError, match="non-empty"):
        TraceWriter(tmp_path / "occupied")


def test_writer_bounds_buffer_and_cuts_shards(tmp_path):
    writer = TraceWriter(tmp_path / "w.store", shard_events=4, num_devices=1)
    for i in range(11):
        writer.append_data_op(
            seq=i, kind=DataOpKind.ALLOC, src_device_num=1, dest_device_num=0,
            src_addr=i, dest_addr=0x1000 + i, nbytes=64,
            start_time=float(i), end_time=i + 0.5,
        )
        assert writer.buffered_events <= 4
    store = writer.close(total_runtime=20.0)
    assert store.num_shards == 3
    assert [s.num_events for s in store.shards] == [4, 4, 3]
    assert store.total_runtime == 20.0
    validate_stream(store)


def test_writer_close_is_idempotent_guard(tmp_path):
    writer = TraceWriter(tmp_path / "w.store", shard_events=4)
    writer.close()
    with pytest.raises(ValueError, match="closed"):
        writer.append_target(
            seq=0, kind=TargetKind.TARGET, device_num=0,
            start_time=0.0, end_time=1.0,
        )


def test_late_device_count_is_manifest_authoritative(tmp_path):
    # Devices can initialise after the first shards were flushed: the
    # writer stamps early shards with a stale count, but close() records
    # the true one in the manifest, which loaded batches and validation
    # must follow.
    writer = TraceWriter(tmp_path / "w.store", shard_events=2, num_devices=1)
    for i in range(5):
        writer.append_data_op(
            seq=i, kind=DataOpKind.ALLOC, src_device_num=2, dest_device_num=i % 2,
            src_addr=i, dest_addr=0x1000 + i, nbytes=64,
            start_time=float(i), end_time=i + 0.5,
        )
    store = writer.close(num_devices=2)
    assert store.num_devices == 2
    for batch in store.batches():
        assert batch.num_devices == 2
    validate_stream(store)  # must not flag stale per-shard device counts


def test_resharding_coalesces_small_shards(tmp_path):
    ct = _sample_trace()
    fine = shard_trace(ct, tmp_path / "fine.store", shard_events=2)
    assert fine.num_shards > 1
    coarse = shard_trace(fine, tmp_path / "coarse.store", shard_events=1000)
    assert coarse.num_shards == 1  # small input batches merged into one shard
    assert _dicts_equal(merge_shards(coarse), ct)
    again = shard_trace(fine, tmp_path / "mid.store", shard_events=7)
    assert [s.num_events for s in again.shards][:-1] == [7] * (again.num_shards - 1)
    assert _dicts_equal(merge_shards(again), ct)


def test_compressed_shards_round_trip(tmp_path):
    ct = _sample_trace()
    plain = shard_trace(ct, tmp_path / "plain.store", shard_events=10)
    packed = shard_trace(ct, tmp_path / "packed.store", shard_events=10, compress=True)
    assert _dicts_equal(merge_shards(packed), merge_shards(plain))


def test_validate_stream_flags_boundary_disorder(tmp_path):
    b = TraceBuilder()
    for i in range(4):
        b.alloc(0x100 + i, 0xA000 + i * 0x100)
    trace = ColumnarTrace.from_trace(b.build())
    store = shard_trace(trace, tmp_path / "t.store", shard_events=2)
    # Corrupt the second shard: shift its events before the first shard's.
    shard = store.load_batch(1)
    bad = ColumnarTrace(num_devices=shard.num_devices)
    for event in shard.data_op_events:
        bad.append_data_op_event(event.with_times(0.0, 0.0))
    bad.save_flat(store.path / store.shards[1].file)
    problems = validate_stream(ShardedTraceStore.open(store.path), strict=False)
    assert any("across the shard boundary" in p for p in problems)
    with pytest.raises(TraceValidationError):
        validate_stream(ShardedTraceStore.open(store.path))


# --------------------------------------------------------------------- #
# Stream utilities
# --------------------------------------------------------------------- #
def test_sliced_stream_is_reiterable():
    ct = _sample_trace()
    stream = SlicedTraceStream(ct, shard_events=6)
    first = [len(batch) for batch in stream.batches()]
    second = [len(batch) for batch in stream.batches()]
    assert first == second
    assert sum(first) == len(ct)


def test_materialize_data_op_events_targeted(tmp_path):
    ct = _sample_trace()
    store = shard_trace(ct, tmp_path / "t.store", shard_events=8)
    gpos = np.array([0, 5, ct.num_data_op_events - 1], dtype=np.int64)
    events = materialize_data_op_events(store, gpos)
    for pos in gpos:
        assert events[int(pos)] == ct.data_op_event_at(int(pos))


def test_materialize_rejects_out_of_range(tmp_path):
    ct = _sample_trace()
    store = shard_trace(ct, tmp_path / "t.store", shard_events=8)
    with pytest.raises(IndexError):
        materialize_data_op_events(store, np.array([ct.num_data_op_events + 7]))


def test_trace_like_view_folds_stats():
    ct = _sample_trace()
    view = trace_like_view(as_event_stream(ct, 5))
    assert view.summary() == ct.summary()
    assert view.runtime == ct.runtime
    # Stores and plain traces pass through unchanged.
    assert trace_like_view(ct) is ct


# --------------------------------------------------------------------- #
# Property: merge(shard(trace, k)) is lossless
# --------------------------------------------------------------------- #
def test_empty_trace_round_trips(tmp_path):
    empty = ColumnarTrace(num_devices=3, program_name="empty")
    store = shard_trace(empty, tmp_path / "e.store", shard_events=4)
    assert store.num_shards == 0
    assert store.is_empty()
    merged = merge_shards(store)
    assert _dicts_equal(merged, empty)
    assert merged.num_devices == 3 and merged.program_name == "empty"


def test_single_event_trace_round_trips(tmp_path):
    b = TraceBuilder()
    b.kernel(name="only")
    ct = ColumnarTrace.from_trace(b.build())
    store = shard_trace(ct, tmp_path / "s.store", shard_events=1)
    assert store.num_shards == 1
    assert _dicts_equal(merge_shards(store), ct)


@pytest.mark.slow
@settings(max_examples=60, deadline=None)
@given(
    steps=st.lists(
        st.tuples(st.integers(0, 2), st.sampled_from(["alloc", "h2d", "d2h", "kernel"])),
        min_size=0,
        max_size=30,
    ),
    shard_events=st.integers(min_value=1, max_value=40),
)
def test_shard_merge_lossless_property(tmp_path_factory, steps, shard_events):
    b = TraceBuilder(num_devices=2)
    mapped: dict[int, int] = {}
    for var, step in steps:
        dev = var % 2
        host, daddr = 0x100 + var * 0x10, 0xA000 + var * 0x100
        if step == "kernel":
            b.kernel(device=dev)
            continue
        if var not in mapped:
            mapped[var] = daddr
            b.alloc(host, daddr, device=dev)
        if step == "h2d":
            b.h2d(host, daddr, content_hash=var + 1, device=dev)
        elif step == "d2h":
            b.d2h(host, daddr, content_hash=var + 50, device=dev)
    ct = ColumnarTrace.from_trace(b.build())

    # In-memory slicing and the on-disk store must both reassemble losslessly.
    assert _dicts_equal(merge_stream(as_event_stream(ct, shard_events)), ct)
    path = tmp_path_factory.mktemp("prop") / "t.store"
    store = shard_trace(ct, path, shard_events=shard_events)
    assert _dicts_equal(merge_shards(store), ct)
