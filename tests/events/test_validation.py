"""Tests for trace validation."""

import pytest

from repro.events.records import DataOpEvent, DataOpKind
from repro.events.trace import Trace
from repro.events.validation import TraceValidationError, validate_trace

from tests.conftest import TraceBuilder


def _valid_trace() -> Trace:
    b = TraceBuilder()
    b.alloc(0x1, 0xA)
    b.h2d(0x1, 0xA, content_hash=5)
    b.kernel()
    b.delete(0x1, 0xA)
    return b.build()


def test_valid_trace_passes():
    assert validate_trace(_valid_trace()) == []


def test_out_of_order_events_detected():
    trace = _valid_trace()
    trace.data_op_events.reverse()
    problems = validate_trace(trace, strict=False)
    assert any("chronological" in p for p in problems)


def test_strict_mode_raises():
    trace = _valid_trace()
    trace.data_op_events.reverse()
    with pytest.raises(TraceValidationError):
        validate_trace(trace)


def test_unknown_device_detected():
    trace = _valid_trace()
    bad = DataOpEvent(
        seq=99, kind=DataOpKind.ALLOC, src_device_num=1, dest_device_num=7,
        src_addr=0x1, dest_addr=0xB, nbytes=8,
        start_time=trace.end_time, end_time=trace.end_time + 1,
    )
    trace.data_op_events.append(bad)
    trace.total_runtime = None
    problems = validate_trace(trace, strict=False)
    assert any("unknown destination device" in p for p in problems)


def test_duplicate_sequence_numbers_detected():
    trace = _valid_trace()
    trace.data_op_events.append(trace.data_op_events[-1])
    problems = validate_trace(trace, strict=False)
    assert any("duplicate data-op event sequence" in p for p in problems)


def test_live_address_reuse_detected():
    b = TraceBuilder()
    b.alloc(0x1, 0xA)
    b.alloc(0x2, 0xA)  # same device address while the first is still live
    problems = validate_trace(b.build(), strict=False)
    assert any("reuses a live device address" in p for p in problems)


def test_transfer_between_same_device_detected():
    b = TraceBuilder()
    event = b.h2d(0x1, 0xA, content_hash=1)
    object.__setattr__(event, "src_device_num", event.dest_device_num)
    problems = validate_trace(b.build(), strict=False)
    assert any("identical source and destination" in p for p in problems)


def test_total_runtime_before_last_event_detected():
    trace = _valid_trace()
    trace.total_runtime = trace.end_time / 2.0
    problems = validate_trace(trace, strict=False)
    assert any("total_runtime" in p for p in problems)


def test_zero_devices_detected():
    trace = Trace(num_devices=0)
    problems = validate_trace(trace, strict=False)
    assert any("at least one target device" in p for p in problems)
