"""Detector throughput on a million-event synthetic trace.

Benchmarks every detector on both representations of the same trace — the
object-based reference path over dataclass event lists and the vectorised
columnar fast path — verifies the findings are identical, and writes a
machine-readable throughput record to ``BENCH_detectors.json`` in the repo
root.  The acceptance bar for the columnar backbone is an aggregate speedup
of at least 5x over the object path.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow  # 1M-event benchmark: skipped by -m "not slow"

from repro.core.detectors.duplicates import (
    find_duplicate_transfers,
    find_duplicate_transfers_columnar,
)
from repro.core.detectors.repeated_allocs import (
    find_repeated_allocations,
    find_repeated_allocations_columnar,
)
from repro.core.detectors.roundtrips import find_round_trips, find_round_trips_columnar
from repro.core.detectors.unused_allocs import (
    find_unused_allocations,
    find_unused_allocations_columnar,
)
from repro.core.detectors.unused_transfers import (
    find_unused_transfers,
    find_unused_transfers_columnar,
)
from repro.events.synth import make_synthetic_columnar_trace

NUM_EVENTS = 1_000_000
#: The acceptance bar on dedicated hardware is 5x.  Shared CI runners can
#: suffer scheduling noise inside the (sub-second) columnar timing windows,
#: so the bar is overridable there via the environment.
MIN_AGGREGATE_SPEEDUP = float(os.environ.get("OMPDATAPERF_BENCH_MIN_SPEEDUP", "5.0"))

_RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module")
def traces():
    columnar = make_synthetic_columnar_trace(NUM_EVENTS)
    trace = columnar.to_trace()
    return columnar, trace


def _measure(label, traces, object_path, columnar_path):
    columnar, trace = traces
    total_events = len(trace)

    t0 = time.perf_counter()
    object_findings = object_path(trace)
    object_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    columnar_findings = columnar_path(columnar)
    columnar_seconds = time.perf_counter() - t0

    assert columnar_findings == object_findings, (
        f"{label}: columnar findings differ from the object oracle"
    )
    record = {
        "object_seconds": object_seconds,
        "columnar_seconds": columnar_seconds,
        "object_events_per_sec": total_events / object_seconds,
        "columnar_events_per_sec": total_events / columnar_seconds,
        "speedup": object_seconds / columnar_seconds,
        "num_findings": len(object_findings),
    }
    _RESULTS[label] = record
    return record


def test_duplicates_throughput(traces):
    record = _measure(
        "duplicates", traces,
        lambda t: find_duplicate_transfers(t.data_op_events),
        find_duplicate_transfers_columnar,
    )
    assert record["num_findings"] > 0


def test_roundtrips_throughput(traces):
    record = _measure(
        "roundtrips", traces,
        lambda t: find_round_trips(t.data_op_events),
        find_round_trips_columnar,
    )
    assert record["num_findings"] > 0


def test_repeated_allocs_throughput(traces):
    record = _measure(
        "repeated_allocs", traces,
        lambda t: find_repeated_allocations(t.data_op_events),
        find_repeated_allocations_columnar,
    )
    assert record["num_findings"] > 0


def test_unused_allocs_throughput(traces):
    record = _measure(
        "unused_allocs", traces,
        lambda t: find_unused_allocations(t.target_events, t.data_op_events, t.num_devices),
        lambda c: find_unused_allocations_columnar(c, c.num_devices),
    )
    assert record["num_findings"] > 0


def test_unused_transfers_throughput(traces):
    record = _measure(
        "unused_transfers", traces,
        lambda t: find_unused_transfers(t.target_events, t.data_op_events, t.num_devices),
        lambda c: find_unused_transfers_columnar(c, c.num_devices),
    )
    assert record["num_findings"] > 0


def test_aggregate_speedup_and_write_record(traces):
    assert len(_RESULTS) == 5, "per-detector benchmarks must run first"
    columnar, trace = traces
    total_object = sum(r["object_seconds"] for r in _RESULTS.values())
    total_columnar = sum(r["columnar_seconds"] for r in _RESULTS.values())
    aggregate_speedup = total_object / total_columnar

    record = {
        "benchmark": "detector_throughput",
        "num_events": len(trace),
        "num_data_op_events": len(trace.data_op_events),
        "num_target_events": len(trace.target_events),
        "detectors": _RESULTS,
        "aggregate": {
            "object_seconds": total_object,
            "columnar_seconds": total_columnar,
            "object_events_per_sec": 5 * len(trace) / total_object,
            "columnar_events_per_sec": 5 * len(trace) / total_columnar,
            "speedup": aggregate_speedup,
        },
    }
    out_path = Path(__file__).resolve().parent.parent / "BENCH_detectors.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    assert aggregate_speedup >= MIN_AGGREGATE_SPEEDUP, (
        f"columnar detectors are only {aggregate_speedup:.1f}x faster than the "
        f"object path (need >= {MIN_AGGREGATE_SPEEDUP}x); see {out_path}"
    )
