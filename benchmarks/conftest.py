"""Benchmark-suite configuration.

Each benchmark regenerates one table or figure of the paper through the
experiment harness and prints the rendered result, so ``pytest benchmarks/
--benchmark-only`` doubles as the artifact's "reproduce the evaluation"
entry point.  Runs are memoised in a process-wide cache
(:data:`repro.experiments.common.GLOBAL_CACHE`) so related benchmarks (e.g.
Figures 2 and 3) share application executions.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import pytest

from repro.apps.base import ProblemSize


#: Sizes swept by the per-application benchmarks.  LARGE is excluded by
#: default to keep the suite's wall-clock time reasonable; pass
#: ``--full-sizes`` to sweep all three classes as the paper does.
def pytest_addoption(parser):
    parser.addoption(
        "--full-sizes",
        action="store_true",
        default=False,
        help="sweep small/medium/large instead of small/medium",
    )


@pytest.fixture(scope="session")
def sweep_sizes(request):
    if request.config.getoption("--full-sizes"):
        return [ProblemSize.SMALL, ProblemSize.MEDIUM, ProblemSize.LARGE]
    return [ProblemSize.SMALL, ProblemSize.MEDIUM]
