#!/usr/bin/env python3
"""Compare BENCH_*.json throughput records across two runs.

Every benchmark in this repo writes a machine-readable ``BENCH_*.json``
record containing one or more ``events_per_sec`` measurements (nested at
arbitrary depth).  This script pairs the records of a *baseline* run (the
previous successful CI run, or any saved snapshot) with the records of the
*current* run by file name, extracts every ``events_per_sec`` metric by
its dotted path, and fails when any metric regressed by more than the
tolerance band::

    python benchmarks/compare_bench.py --baseline prev/ --current .
    python benchmarks/compare_bench.py --baseline prev/ --current . --tolerance 0.25

Exit status: ``0`` when every paired metric is within tolerance, ``1``
when at least one metric regressed, ``2`` on usage errors, and ``3`` —
a distinct *neutral* status — when there is no baseline to compare
against (the first run of a workflow, or a previous run that published
no records).  CI maps ``3`` to a pass-with-notice; keeping it distinct
from ``0`` means a gate that silently never compares anything (a broken
artifact download, a path typo) cannot masquerade as "all metrics within
tolerance".

Shared CI runners are noisy, so the default tolerance is generous (25%);
the point is catching order-of-magnitude cliffs (an accidentally
quadratic path, a lost fast path) rather than chasing single-digit noise.
Metrics present only in the baseline (a renamed or removed benchmark) are
reported but never fail the comparison; metrics present only in the
current run are new and pass by definition.

Besides throughput, engine records carry a per-task overhead breakdown
(``overhead_seconds`` inside each ``overhead`` block — spawn + store open
+ shard decode + shard map).  These are compared with the *opposite*
direction (lower is better) under the same tolerance.  Baselines written
before the overhead fields existed simply contribute no overhead
metrics, so comparisons against old snapshots stay green.

Streaming records additionally carry ``ratio_vs_in_memory`` leaves (how
close reading from disk comes to the in-memory scan; the flat ``.odpf``
format is expected to hold >= 1.0x).  These are gated higher-is-better
like throughput.  Baselines recorded before the shard-format change have
no ratio leaves and pass neutrally, same as the overhead metrics.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Metric leaves compared between runs (higher is better).
METRIC_KEY = "events_per_sec"

#: Overhead leaves compared between runs (lower is better); absent from
#: records written before the warm-pool engine landed.
OVERHEAD_KEY = "overhead_seconds"

#: Streaming closeness-to-memory leaves (higher is better); absent from
#: records written before the flat shard format landed.
RATIO_KEY = "ratio_vs_in_memory"

DEFAULT_TOLERANCE = 0.25

#: Neutral exit status: nothing to compare against (NOT a pass — the
#: caller decides; CI converts it into a pass-with-notice).
EXIT_NO_BASELINE = 3


def extract_leaves(record, leaf_key: str, prefix: str = "") -> dict[str, float]:
    """Every numeric ``leaf_key`` leaf in a record, keyed by dotted path."""
    out: dict[str, float] = {}
    if isinstance(record, dict):
        for key, value in record.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if key == leaf_key and isinstance(value, (int, float)):
                out[path] = float(value)
            else:
                out.update(extract_leaves(value, leaf_key, path))
    elif isinstance(record, list):
        for index, value in enumerate(record):
            out.update(extract_leaves(value, leaf_key, f"{prefix}[{index}]"))
    return out


def extract_metrics(record, prefix: str = "") -> dict[str, float]:
    return extract_leaves(record, METRIC_KEY, prefix)


def extract_overheads(record, prefix: str = "") -> dict[str, float]:
    return extract_leaves(record, OVERHEAD_KEY, prefix)


def extract_ratios(record, prefix: str = "") -> dict[str, float]:
    return extract_leaves(record, RATIO_KEY, prefix)


def load_bench_files(
    directory: Path, extract=extract_metrics
) -> dict[str, dict[str, float]]:
    """``{file name: {metric path: value}}`` for every BENCH_*.json present."""
    out: dict[str, dict[str, float]] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: skipping unreadable {path}: {exc}", file=sys.stderr)
            continue
        out[path.name] = extract(record)
    return out


def compare(
    baseline: dict[str, dict[str, float]],
    current: dict[str, dict[str, float]],
    tolerance: float,
    *,
    unit: str = "events/s",
    fmt: str = "{:,.0f}",
) -> list[str]:
    """Return one message per regressed metric (empty = within tolerance)."""
    regressions: list[str] = []
    for name, base_metrics in sorted(baseline.items()):
        cur_metrics = current.get(name)
        if cur_metrics is None:
            print(f"note: {name}: present in baseline only (benchmark removed?)")
            continue
        for path, base_value in sorted(base_metrics.items()):
            cur_value = cur_metrics.get(path)
            if cur_value is None:
                print(f"note: {name}: {path} present in baseline only")
                continue
            if base_value <= 0:
                continue  # a zero/negative baseline rate carries no signal
            ratio = cur_value / base_value
            status = "ok"
            if ratio < 1.0 - tolerance:
                status = "REGRESSION"
                regressions.append(
                    f"{name}: {path} fell to {ratio:.2f}x of baseline "
                    f"({fmt.format(base_value)} -> {fmt.format(cur_value)} {unit}, "
                    f"tolerance {1.0 - tolerance:.2f}x)"
                )
            print(
                f"{status:>10}  {name}  {path}  "
                f"{fmt.format(base_value):>14} -> {fmt.format(cur_value):>14}  "
                f"({ratio:.2f}x)"
            )
    for name in sorted(set(current) - set(baseline)):
        print(f"note: {name}: new benchmark (no baseline), passing")
    return regressions


def compare_overheads(
    baseline: dict[str, dict[str, float]],
    current: dict[str, dict[str, float]],
    tolerance: float,
) -> list[str]:
    """Lower-is-better twin of :func:`compare` for overhead seconds.

    Old baselines have no overhead leaves: every current metric is then
    "new" and passes, so the gate degrades gracefully across the format
    change.
    """
    regressions: list[str] = []
    for name, base_metrics in sorted(baseline.items()):
        cur_metrics = current.get(name, {})
        for path, base_value in sorted(base_metrics.items()):
            cur_value = cur_metrics.get(path)
            if cur_value is None:
                print(f"note: {name}: {path} present in baseline only")
                continue
            if base_value <= 0:
                continue  # a warm run's zero overhead carries no ratio
            ratio = cur_value / base_value
            status = "ok"
            if ratio > 1.0 + tolerance:
                status = "REGRESSION"
                regressions.append(
                    f"{name}: {path} grew to {ratio:.2f}x of baseline "
                    f"({base_value:.4f}s -> {cur_value:.4f}s overhead, "
                    f"tolerance {1.0 + tolerance:.2f}x)"
                )
            print(
                f"{status:>10}  {name}  {path}  "
                f"{base_value:>10.4f}s -> {cur_value:>10.4f}s  ({ratio:.2f}x)"
            )
        new_paths = sorted(set(cur_metrics) - set(base_metrics))
        if new_paths:
            print(
                f"note: {name}: {len(new_paths)} overhead metric(s) without "
                f"a baseline (older record format), passing"
            )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when any BENCH_*.json events_per_sec metric "
        "regressed past the tolerance band."
    )
    parser.add_argument(
        "--baseline", required=True, metavar="DIR",
        help="directory holding the baseline BENCH_*.json records",
    )
    parser.add_argument(
        "--current", required=True, metavar="DIR",
        help="directory holding the current run's BENCH_*.json records",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE, metavar="FRACTION",
        help="allowed fractional slowdown before failing "
        f"(default: {DEFAULT_TOLERANCE:.2f} = fail below "
        f"{1 - DEFAULT_TOLERANCE:.0%} of baseline)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")

    baseline_dir, current_dir = Path(args.baseline), Path(args.current)
    if not current_dir.is_dir():
        parser.error(f"{current_dir}: no such directory")
    current = load_bench_files(current_dir)
    if not current:
        print(f"warning: no BENCH_*.json records under {current_dir}", file=sys.stderr)

    if not baseline_dir.is_dir():
        print(
            f"note: no baseline directory at {baseline_dir}; "
            f"nothing to compare (neutral)"
        )
        return EXIT_NO_BASELINE
    baseline = load_bench_files(baseline_dir)
    if not baseline:
        print(
            f"note: no baseline records under {baseline_dir}; "
            f"nothing to compare (neutral)"
        )
        return EXIT_NO_BASELINE

    regressions = compare(baseline, current, args.tolerance)
    regressions += compare_overheads(
        load_bench_files(baseline_dir, extract_overheads),
        load_bench_files(current_dir, extract_overheads),
        args.tolerance,
    )
    # Closeness-to-memory ratios: drop files without ratio leaves so a
    # pre-format baseline contributes nothing (graceful pass) instead of
    # a wall of present-in-current-only notes.
    regressions += compare(
        {k: v for k, v in load_bench_files(
            baseline_dir, extract_ratios).items() if v},
        {k: v for k, v in load_bench_files(
            current_dir, extract_ratios).items() if v},
        args.tolerance,
        unit="x in-memory",
        fmt="{:.3f}",
    )
    if regressions:
        print(f"\n{len(regressions)} benchmark regression(s):", file=sys.stderr)
        for message in regressions:
            print(f"  {message}", file=sys.stderr)
        return 1
    print("\nall benchmark metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
