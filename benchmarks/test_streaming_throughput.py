"""Streaming pipeline throughput and memory on a million-event trace.

Replays the 1M-event synthetic trace through the sharded store and the
incremental streaming detectors at several shard sizes, verifies the
findings are bit-identical to the in-memory columnar path, and writes a
machine-readable record to ``BENCH_streaming.json`` in the repo root.

Three claims are measured and enforced:

* **Bounded-memory ingest.**  Writing the trace through a
  :class:`~repro.events.store.TraceWriter` allocates O(shard_events)
  memory — the traced peak scales with the shard size, not the trace.
* **Streaming throughput.**  At the default shard size the five
  incremental detector passes (one scan of the store, fold + finalize)
  reach at least ``MIN_STREAMING_RATIO`` of the in-memory columnar
  throughput (load the whole store, run the vectorised detectors).
* **Streaming analysis memory.**  The streaming path peaks below the
  in-memory path; what remains is the shard buffer plus the detector
  carries (key tables, pending legs — see ``docs/architecture.md``),
  which do not grow when the same trace is cut into more shards.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

import pytest

from repro.core.analysis import analyze_stream
from repro.core.detectors.duplicates import find_duplicate_transfers_columnar
from repro.core.detectors.repeated_allocs import find_repeated_allocations_columnar
from repro.core.detectors.roundtrips import find_round_trips_columnar
from repro.core.detectors.unused_allocs import find_unused_allocations_columnar
from repro.core.detectors.unused_transfers import find_unused_transfers_columnar
from repro.events.store import TraceWriter, shard_trace
from repro.events.stream import DEFAULT_SHARD_EVENTS, iter_trace_slices
from repro.events.synth import make_synthetic_columnar_trace

pytestmark = pytest.mark.slow  # 1M-event benchmark: skipped by -m "not slow"

NUM_EVENTS = 1_000_000
SHARD_SIZES = (32_768, DEFAULT_SHARD_EVENTS, 524_288)

#: Acceptance bar on dedicated hardware; shared CI runners can relax it via
#: the environment, mirroring the detector-throughput benchmark.
MIN_STREAMING_RATIO = float(os.environ.get("OMPDATAPERF_BENCH_MIN_STREAMING_RATIO", "0.5"))

_RECORD: dict = {}


@pytest.fixture(scope="module")
def trace():
    return make_synthetic_columnar_trace(NUM_EVENTS)


@pytest.fixture(scope="module")
def stores(trace, tmp_path_factory):
    base = tmp_path_factory.mktemp("streaming-bench")
    return {
        shard_events: shard_trace(
            trace, base / f"shard-{shard_events}", shard_events=shard_events
        )
        for shard_events in SHARD_SIZES
    }


def _run_columnar(full):
    return (
        find_duplicate_transfers_columnar(full),
        find_round_trips_columnar(full),
        find_repeated_allocations_columnar(full),
        find_unused_allocations_columnar(full, full.num_devices),
        find_unused_transfers_columnar(full, full.num_devices),
    )


def _report_findings(report):
    return (
        report.duplicate_groups,
        report.round_trip_groups,
        report.repeated_alloc_groups,
        report.unused_allocations,
        report.unused_transfers,
    )


def test_ingest_memory_is_shard_bounded(trace, tmp_path_factory):
    """TraceWriter ingest peaks scale with shard size, not trace size."""
    base = tmp_path_factory.mktemp("ingest-bench")
    peaks: dict[int, int] = {}
    for shard_events in SHARD_SIZES:
        # The source trace pre-exists tracing, so only writer-side
        # allocations (buffer, slice, savez) count toward the peak.
        tracemalloc.start()
        writer = TraceWriter(
            base / f"in-{shard_events}", shard_events=shard_events, num_devices=1
        )
        for piece in iter_trace_slices(trace, shard_events):
            writer.write_batch(piece)
        writer.close(total_runtime=trace.total_runtime)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peaks[shard_events] = peak

    _RECORD["ingest"] = {
        str(shard_events): {"peak_traced_bytes": peaks[shard_events]}
        for shard_events in SHARD_SIZES
    }
    smallest, largest = SHARD_SIZES[0], SHARD_SIZES[-1]
    # Peak grows with the shard, and the small-shard ingest of a 1M-event
    # trace stays far below the trace's in-memory footprint (~70 MB).
    assert peaks[smallest] < peaks[largest]
    assert peaks[smallest] < 40 * 1024 * 1024, (
        f"ingest at {smallest}-event shards peaked at {peaks[smallest] / 1e6:.1f} MB"
    )


def test_streaming_matches_columnar_and_measures_throughput(trace, stores):
    store = stores[DEFAULT_SHARD_EVENTS]

    t0 = time.perf_counter()
    full = store.load()
    expected = _run_columnar(full)
    in_memory_seconds = time.perf_counter() - t0
    del full

    per_shard: dict[str, dict] = {}
    for shard_events in SHARD_SIZES:
        t0 = time.perf_counter()
        report = analyze_stream(stores[shard_events])
        seconds = time.perf_counter() - t0
        assert _report_findings(report) == expected, (
            f"streaming findings differ from the columnar oracle at "
            f"shard_events={shard_events}"
        )
        per_shard[str(shard_events)] = {
            "seconds": seconds,
            "events_per_sec": NUM_EVENTS / seconds,
            "ratio_vs_in_memory": in_memory_seconds / seconds,
        }

    _RECORD["in_memory"] = {
        "seconds": in_memory_seconds,
        "events_per_sec": NUM_EVENTS / in_memory_seconds,
    }
    _RECORD["streaming"] = per_shard

    default = per_shard[str(DEFAULT_SHARD_EVENTS)]
    assert default["ratio_vs_in_memory"] >= MIN_STREAMING_RATIO, (
        f"streaming analysis at the default shard size reaches only "
        f"{default['ratio_vs_in_memory']:.2f}x of the in-memory columnar "
        f"throughput (need >= {MIN_STREAMING_RATIO})"
    )


def test_streaming_memory_below_in_memory_and_write_record(trace, stores):
    assert "streaming" in _RECORD, "throughput benchmark must run first"
    store = stores[DEFAULT_SHARD_EVENTS]

    tracemalloc.start()
    analyze_stream(store)
    _, streaming_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    tracemalloc.start()
    full = store.load()
    _run_columnar(full)
    _, in_memory_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del full

    # Cutting the same trace into 4x smaller shards must not grow the
    # analysis peak: it is carry + shard buffer, not trace size.
    tracemalloc.start()
    analyze_stream(stores[SHARD_SIZES[0]])
    _, small_shard_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    _RECORD["memory"] = {
        "streaming_peak_traced_bytes": streaming_peak,
        "streaming_small_shard_peak_traced_bytes": small_shard_peak,
        "in_memory_peak_traced_bytes": in_memory_peak,
    }
    record = {
        "benchmark": "streaming_throughput",
        "num_events": NUM_EVENTS,
        "shard_sizes": list(SHARD_SIZES),
        "default_shard_events": DEFAULT_SHARD_EVENTS,
        "min_streaming_ratio": MIN_STREAMING_RATIO,
        **_RECORD,
    }
    out_path = Path(__file__).resolve().parent.parent / "BENCH_streaming.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    assert streaming_peak < in_memory_peak, (
        f"streaming analysis peaked at {streaming_peak / 1e6:.1f} MB, above the "
        f"in-memory path's {in_memory_peak / 1e6:.1f} MB; see {out_path}"
    )
    assert small_shard_peak < 1.25 * streaming_peak, (
        "analysis peak grew when the trace was cut into smaller shards — "
        "memory is supposed to be carry + shard buffer, not trace size"
    )
