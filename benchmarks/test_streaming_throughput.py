"""Streaming pipeline throughput and memory on a million-event trace.

Replays the 1M-event synthetic trace through the sharded store and the
incremental streaming detectors at several shard sizes, verifies the
findings are bit-identical to the in-memory columnar path, and writes a
machine-readable record to ``BENCH_streaming.json`` in the repo root.

Three claims are measured and enforced:

* **Bounded-memory ingest.**  Writing the trace through a
  :class:`~repro.events.store.TraceWriter` allocates O(shard_events)
  memory — the traced peak scales with the shard size, not the trace.
* **Streaming throughput.**  At the default shard size the five
  incremental detector passes (one scan of the store, fold + finalize)
  reach at least ``MIN_STREAMING_RATIO`` of the in-memory columnar
  throughput (load the whole store, run the vectorised detectors).
* **Streaming analysis memory.**  The streaming path peaks below the
  in-memory path; what remains is the shard buffer plus the detector
  carries (key tables, pending legs — see ``docs/architecture.md``),
  which do not grow when the same trace is cut into more shards.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

import pytest

from repro.core.analysis import analyze_stream
from repro.core.detectors.duplicates import find_duplicate_transfers_columnar
from repro.core.detectors.repeated_allocs import find_repeated_allocations_columnar
from repro.core.detectors.roundtrips import find_round_trips_columnar
from repro.core.detectors.unused_allocs import find_unused_allocations_columnar
from repro.core.detectors.unused_transfers import find_unused_transfers_columnar
from repro.events.store import TraceWriter, shard_trace
from repro.events.stream import DEFAULT_SHARD_EVENTS, iter_trace_slices
from repro.events.synth import make_synthetic_columnar_trace

pytestmark = pytest.mark.slow  # 1M-event benchmark: skipped by -m "not slow"

NUM_EVENTS = 1_000_000
SHARD_SIZES = (32_768, DEFAULT_SHARD_EVENTS, 524_288)

#: Acceptance bar on dedicated hardware; shared CI runners can relax it via
#: the environment, mirroring the detector-throughput benchmark.
MIN_STREAMING_RATIO = float(os.environ.get("OMPDATAPERF_BENCH_MIN_STREAMING_RATIO", "0.5"))

#: The flat format's whole point: streaming a local ``.odpf`` store must
#: be at least as fast as streaming the legacy ``.npz`` store it replaces
#: (>= 1.0x) — mmapped shards decode nothing, so the storage format
#: contributes zero to the scan.  (Against the *in-memory* scan the
#: incremental fold itself is the limit at the default shard size; that
#: ratio is recorded per format and gated by ``MIN_STREAMING_RATIO``.)
MIN_ODPF_STREAMING_RATIO = float(
    os.environ.get("OMPDATAPERF_BENCH_MIN_ODPF_RATIO", "1.0")
)

_RECORD: dict = {}


@pytest.fixture(scope="module")
def trace():
    return make_synthetic_columnar_trace(NUM_EVENTS)


@pytest.fixture(scope="module")
def stores(trace, tmp_path_factory):
    base = tmp_path_factory.mktemp("streaming-bench")
    return {
        shard_events: shard_trace(
            trace, base / f"shard-{shard_events}", shard_events=shard_events
        )
        for shard_events in SHARD_SIZES
    }


def _run_columnar(full):
    return (
        find_duplicate_transfers_columnar(full),
        find_round_trips_columnar(full),
        find_repeated_allocations_columnar(full),
        find_unused_allocations_columnar(full, full.num_devices),
        find_unused_transfers_columnar(full, full.num_devices),
    )


def _report_findings(report):
    return (
        report.duplicate_groups,
        report.round_trip_groups,
        report.repeated_alloc_groups,
        report.unused_allocations,
        report.unused_transfers,
    )


def test_ingest_memory_is_shard_bounded(trace, tmp_path_factory):
    """TraceWriter ingest peaks scale with shard size, not trace size."""
    base = tmp_path_factory.mktemp("ingest-bench")
    peaks: dict[int, int] = {}
    for shard_events in SHARD_SIZES:
        # The source trace pre-exists tracing, so only writer-side
        # allocations (buffer, slice, savez) count toward the peak.
        tracemalloc.start()
        writer = TraceWriter(
            base / f"in-{shard_events}", shard_events=shard_events, num_devices=1
        )
        for piece in iter_trace_slices(trace, shard_events):
            writer.write_batch(piece)
        writer.close(total_runtime=trace.total_runtime)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peaks[shard_events] = peak

    _RECORD["ingest"] = {
        str(shard_events): {"peak_traced_bytes": peaks[shard_events]}
        for shard_events in SHARD_SIZES
    }
    smallest, largest = SHARD_SIZES[0], SHARD_SIZES[-1]
    # Peak grows with the shard, and the small-shard ingest of a 1M-event
    # trace stays far below the trace's in-memory footprint (~70 MB).
    assert peaks[smallest] < peaks[largest]
    assert peaks[smallest] < 40 * 1024 * 1024, (
        f"ingest at {smallest}-event shards peaked at {peaks[smallest] / 1e6:.1f} MB"
    )


def test_streaming_matches_columnar_and_measures_throughput(trace, stores):
    store = stores[DEFAULT_SHARD_EVENTS]

    t0 = time.perf_counter()
    full = store.load()
    expected = _run_columnar(full)
    in_memory_seconds = time.perf_counter() - t0
    del full

    per_shard: dict[str, dict] = {}
    for shard_events in SHARD_SIZES:
        t0 = time.perf_counter()
        report = analyze_stream(stores[shard_events])
        seconds = time.perf_counter() - t0
        assert _report_findings(report) == expected, (
            f"streaming findings differ from the columnar oracle at "
            f"shard_events={shard_events}"
        )
        per_shard[str(shard_events)] = {
            "seconds": seconds,
            "events_per_sec": NUM_EVENTS / seconds,
            "ratio_vs_in_memory": in_memory_seconds / seconds,
        }

    _RECORD["in_memory"] = {
        "seconds": in_memory_seconds,
        "events_per_sec": NUM_EVENTS / in_memory_seconds,
    }
    _RECORD["streaming"] = per_shard

    default = per_shard[str(DEFAULT_SHARD_EVENTS)]
    assert default["ratio_vs_in_memory"] >= MIN_STREAMING_RATIO, (
        f"streaming analysis at the default shard size reaches only "
        f"{default['ratio_vs_in_memory']:.2f}x of the in-memory columnar "
        f"throughput (need >= {MIN_STREAMING_RATIO})"
    )


def test_shard_format_legs_open_latency_and_throughput(trace, tmp_path_factory):
    """Legacy ``.npz`` vs flat ``.odpf`` shards, same trace, same size.

    Three measurements per format: time to open the store and materialise
    its first shard (the decode-vs-mmap difference in isolation), the
    full streaming analysis throughput, and its ratio against the
    same-format in-memory path (load the whole store, run the vectorised
    detectors).  The gated claim compares across formats: streaming the
    flat ``.odpf`` store must be at least as fast as streaming the legacy
    ``.npz`` store it replaces (``ratio_vs_npz_streaming >= 1.0`` — the
    decode cost is gone and nothing replaced it), and mmapping the first
    flat shard must beat decoding the first npz shard.
    """
    from repro.events.store import ShardedTraceStore

    base = tmp_path_factory.mktemp("format-bench")
    legs: dict[str, dict] = {}
    expected = None
    for fmt in ("npz", "odpf"):
        store = shard_trace(
            trace,
            base / f"fmt-{fmt}",
            shard_events=DEFAULT_SHARD_EVENTS,
            shard_format=fmt,
        )

        t0 = time.perf_counter()
        fresh = ShardedTraceStore.open(store.path)
        fresh.load_batch(0)
        open_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        full = store.load()
        findings = _run_columnar(full)
        in_memory_seconds = time.perf_counter() - t0
        if expected is None:
            expected = findings
        assert findings == expected
        del full

        t0 = time.perf_counter()
        report = analyze_stream(store)
        seconds = time.perf_counter() - t0
        assert _report_findings(report) == expected

        legs[fmt] = {
            "open_to_first_batch_seconds": open_seconds,
            "in_memory_seconds": in_memory_seconds,
            "seconds": seconds,
            "events_per_sec": NUM_EVENTS / seconds,
            "ratio_vs_in_memory": in_memory_seconds / seconds,
            "decode_count": store.decode_count,
            "map_count": store.map_count,
        }

    legs["odpf"]["ratio_vs_npz_streaming"] = (
        legs["npz"]["seconds"] / legs["odpf"]["seconds"]
    )
    _RECORD["formats"] = legs
    assert legs["odpf"]["decode_count"] == 0
    assert legs["odpf"]["map_count"] > 0
    assert legs["npz"]["decode_count"] > 0
    assert (
        legs["odpf"]["open_to_first_batch_seconds"]
        <= legs["npz"]["open_to_first_batch_seconds"]
    ), "mmapping the first flat shard should beat decoding the first npz shard"
    assert legs["odpf"]["ratio_vs_npz_streaming"] >= MIN_ODPF_STREAMING_RATIO, (
        f"streaming a flat .odpf store reaches only "
        f"{legs['odpf']['ratio_vs_npz_streaming']:.2f}x of the legacy .npz "
        f"streaming leg (need >= {MIN_ODPF_STREAMING_RATIO})"
    )


def test_streaming_memory_below_in_memory_and_write_record(trace, stores):
    assert "streaming" in _RECORD, "throughput benchmark must run first"
    store = stores[DEFAULT_SHARD_EVENTS]

    tracemalloc.start()
    analyze_stream(store)
    _, streaming_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    tracemalloc.start()
    full = store.load()
    _run_columnar(full)
    _, in_memory_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del full

    # Cutting the same trace into 4x smaller shards must not grow the
    # analysis peak: it is carry + shard buffer, not trace size.
    tracemalloc.start()
    analyze_stream(stores[SHARD_SIZES[0]])
    _, small_shard_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    _RECORD["memory"] = {
        "streaming_peak_traced_bytes": streaming_peak,
        "streaming_small_shard_peak_traced_bytes": small_shard_peak,
        "in_memory_peak_traced_bytes": in_memory_peak,
    }
    record = {
        "benchmark": "streaming_throughput",
        "num_events": NUM_EVENTS,
        "shard_sizes": list(SHARD_SIZES),
        "default_shard_events": DEFAULT_SHARD_EVENTS,
        "min_streaming_ratio": MIN_STREAMING_RATIO,
        "min_odpf_streaming_ratio": MIN_ODPF_STREAMING_RATIO,
        **_RECORD,
    }
    out_path = Path(__file__).resolve().parent.parent / "BENCH_streaming.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    assert streaming_peak < in_memory_peak, (
        f"streaming analysis peaked at {streaming_peak / 1e6:.1f} MB, above the "
        f"in-memory path's {in_memory_peak / 1e6:.1f} MB; see {out_path}"
    )
    assert small_shard_peak < 1.25 * streaming_peak, (
        "analysis peak grew when the trace was cut into smaller shards — "
        "memory is supposed to be carry + shard buffer, not trace size"
    )
