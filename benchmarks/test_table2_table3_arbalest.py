"""Benchmarks regenerating Table 2 and Table 3 (Arbalest-Vec comparison)."""

import pytest

from repro.apps.base import ProblemSize
from repro.experiments import table2_comparison, table3_runtime
from repro.experiments.common import GLOBAL_CACHE


@pytest.mark.benchmark(group="table2")
def test_table2_issue_classes(benchmark):
    result = benchmark.pedantic(
        lambda: table2_comparison.run(size=ProblemSize.MEDIUM),
        rounds=1, iterations=1,
    )
    print("\n" + table2_comparison.render(result))
    for app, (omp_expected, arbalest_expected) in table2_comparison.PAPER_TABLE2.items():
        row = result.find(app)
        assert row is not None, app
        assert row.ompdataperf_classes == omp_expected, app
        assert row.arbalest_classes == arbalest_expected, app


@pytest.mark.benchmark(group="table3")
def test_table3_runtimes(benchmark):
    result = benchmark.pedantic(
        lambda: table3_runtime.run(size=ProblemSize.MEDIUM, cache=GLOBAL_CACHE),
        rounds=1, iterations=1,
    )
    print("\n" + table3_runtime.render(result))
    for app, (_, paper_after, paper_av) in table3_runtime.PAPER_TABLE3.items():
        row = result.find(app)
        assert row is not None, app
        assert row.arbalest_cell == paper_av, app
        if paper_after is None:
            assert row.after_ompdataperf is None
        else:
            assert row.after_ompdataperf is not None and row.after_ompdataperf < row.before
    # The relative improvement ordering of the paper holds: bspline-vgh gains
    # the most, accuracy essentially nothing.
    speedups = {row.app: (row.ompdataperf_speedup or 1.0) for row in result.rows}
    assert max(speedups, key=speedups.get) == "bspline-vgh-omp"
    assert speedups["accuracy-omp"] == pytest.approx(1.0, abs=0.05)
