"""Benchmark regenerating Table 1 (issues detected per application, Medium inputs)."""

import pytest

from repro.apps.base import AppVariant, ProblemSize
from repro.experiments import table1_issues
from repro.experiments.common import GLOBAL_CACHE


@pytest.mark.benchmark(group="table1")
def test_table1_issue_counts(benchmark):
    result = benchmark.pedantic(
        lambda: table1_issues.run(size=ProblemSize.MEDIUM, cache=GLOBAL_CACHE),
        rounds=1, iterations=1,
    )
    print("\n" + table1_issues.render(result))

    # Exact reproduction of the rows whose counts are structural.
    exact = {
        "babelstream": (499, 0, 499, 0, 0),
        "bfs": (18, 10, 9, 0, 0),
        "hotspot": (2, 0, 0, 0, 0),
        "lud": (0, 0, 0, 0, 0),
        "minife": (402, 4, 398, 0, 0),
        "minifmm": (3, 0, 0, 0, 0),
        "nw": (0, 0, 0, 0, 0),
        "rsbench": (0, 1, 0, 0, 0),
        "xsbench": (0, 1, 0, 0, 0),
    }
    for app, expected in exact.items():
        row = result.find(app, AppVariant.BASELINE)
        assert row is not None and row.as_tuple() == expected, app

    # tealeaf's counts are dominated by the per-iteration reduction scalars;
    # they match the paper to within a handful of init-time receipts.
    tealeaf = result.find("tealeaf", AppVariant.BASELINE)
    paper_dd, paper_rt, paper_ra, _, _ = table1_issues.PAPER_BASELINE_COUNTS["tealeaf"]
    dd, rt, ra, ua, ut = tealeaf.as_tuple()
    assert abs(dd - paper_dd) <= 20
    assert rt == paper_rt
    assert ra == paper_ra
    assert (ua, ut) == (0, 0)

    # Fixed rows.
    for app, expected in table1_issues.PAPER_FIXED_COUNTS.items():
        row = result.find(app, AppVariant.FIXED)
        assert row is not None and row.as_tuple() == expected, app

    # Synthetic rows: every class the paper reports is present.
    for app, expected in table1_issues.PAPER_SYNTHETIC_COUNTS.items():
        row = result.find(app, AppVariant.SYNTHETIC)
        assert row is not None, app
        got = row.as_tuple()
        for got_count, paper_count in zip(got, expected):
            assert (got_count > 0) == (paper_count > 0), (app, got, expected)
