"""Execution-engine scaling on the million-event synthetic trace.

Analyzes the same sharded store with every execution engine — the serial
single-scan pipeline, thread-partitioned folds, process-partitioned
folds, and the distributed coordinator/worker engine (loopback worker
processes leasing tasks from a local-dir queue) — at 1, 2 and 4 workers,
verifies the findings stay bit-identical to the serial path, and writes a
machine-readable record to ``BENCH_engine.json`` in the repo root.  The
distributed leg measures the queue protocol's overhead against the
process pool it functionally supersedes: same partitions, same folds,
plus blob leases, heartbeats and worker start-up.

The headline claim is the process engine's: the detector folds are
GIL-bound Python/NumPy, so only process workers can scale them across
cores.  On hardware with at least ``MIN_CORES_FOR_SPEEDUP`` cores the
benchmark *enforces* a ``MIN_PROCESS_SPEEDUP``× speedup over the serial
streaming analysis at 4 process workers; on smaller machines (including
single-core CI containers, where no parallel speedup is physically
possible) the measurement is still recorded, with ``speedup_enforced:
false`` in the record, mirroring how the other benchmarks relax their
bars through the environment.

Wall-clock speedup is hardware-bound, but the per-task *constants* are
not: every process-engine measurement additionally records the warm-pool
overhead breakdown from ``ProcessEngine.stats`` (``spawn_count``,
``pool_reuse``, and spawn / open / decode / fold seconds), which must
fall even on a single-core container.  A ``process_warm`` leg measures a
``keep_pool=True`` engine on its *second* run — workers already spawned,
stores open, shards published to the shared cache — at the peak worker
count always, and across the full sweep with ``OMPDATAPERF_BENCH_POOL=1``
(the nightly setting).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.analysis import analyze_stream
from repro.core.distributed import DistributedEngine
from repro.core.engine import ProcessEngine
from repro.events.store import shard_trace
from repro.events.stream import DEFAULT_SHARD_EVENTS
from repro.events.synth import make_synthetic_columnar_trace

pytestmark = pytest.mark.slow  # 1M-event benchmark: skipped by -m "not slow"

#: Trace size and worker sweep are environment-tunable so the nightly CI
#: can run a larger sweep than the per-push gate without a code change.
NUM_EVENTS = int(os.environ.get("OMPDATAPERF_BENCH_ENGINE_EVENTS", 1_000_000))
WORKER_COUNTS = tuple(
    int(n)
    for n in os.environ.get("OMPDATAPERF_BENCH_WORKER_COUNTS", "1,2,4").split(",")
)
ENGINES = ("serial", "thread", "process", "distributed")

#: Acceptance bar for the process engine at 4 workers, relaxable on shared
#: runners via the environment like the other benchmark bars.
MIN_PROCESS_SPEEDUP = float(
    os.environ.get("OMPDATAPERF_BENCH_MIN_PROCESS_SPEEDUP", "1.5")
)

#: The speedup bar only binds where the hardware can deliver one.
MIN_CORES_FOR_SPEEDUP = 4

#: ``OMPDATAPERF_BENCH_POOL=1`` runs the warm-pool leg across the whole
#: worker sweep instead of only the peak worker count.
BENCH_POOL = os.environ.get("OMPDATAPERF_BENCH_POOL") == "1"


def _available_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


_RECORD: dict = {}


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    trace = make_synthetic_columnar_trace(NUM_EVENTS)
    path = tmp_path_factory.mktemp("engine-bench") / "trace.store"
    return shard_trace(trace, path, shard_events=DEFAULT_SHARD_EVENTS)


def _findings(report):
    return (
        report.counts,
        report.duplicate_groups,
        report.round_trip_groups,
        report.repeated_alloc_groups,
        report.unused_allocations,
        report.unused_transfers,
    )


def test_engine_scaling_and_write_record(store):
    t0 = time.perf_counter()
    serial_report = analyze_stream(store)
    serial_seconds = time.perf_counter() - t0
    expected = _findings(serial_report)

    results: dict[str, dict[str, dict]] = {}
    for engine in ENGINES:
        if engine == "serial":
            continue  # the baseline above IS the serial measurement
        per_jobs: dict[str, dict] = {}
        for jobs in WORKER_COUNTS:
            # A fresh engine object per measurement so its .stats (the
            # overhead breakdown / coordination counters) can ride along
            # in the record.
            if engine == "process":
                runner = ProcessEngine()
            elif engine == "distributed":
                runner = DistributedEngine()
            else:
                runner = engine
            t0 = time.perf_counter()
            report = analyze_stream(store, engine=runner, jobs=jobs)
            seconds = time.perf_counter() - t0
            assert _findings(report) == expected, (
                f"{engine} engine at {jobs} workers diverged from the "
                f"serial streaming findings"
            )
            per_jobs[str(jobs)] = {
                "seconds": seconds,
                "events_per_sec": NUM_EVENTS / seconds,
                "speedup_vs_serial": serial_seconds / seconds,
            }
            if engine == "process":
                per_jobs[str(jobs)]["overhead"] = dict(runner.stats)
            elif engine == "distributed" and runner.stats:
                # Coordination counters: requeues, speculation, debris,
                # peak un-merged chains, and the final hints snapshot.
                per_jobs[str(jobs)]["coordination"] = dict(runner.stats)
        results[engine] = per_jobs

    # Warm-pool leg: same folds on a keep_pool engine's second run, when
    # the spawn / open / decode constants have already been paid.
    warm_counts = WORKER_COUNTS if BENCH_POOL else (max(WORKER_COUNTS),)
    warm_jobs: dict[str, dict] = {}
    for jobs in warm_counts:
        with ProcessEngine(keep_pool=True) as warm:
            analyze_stream(store, engine=warm, jobs=jobs)  # cold run: pay constants
            t0 = time.perf_counter()
            report = analyze_stream(store, engine=warm, jobs=jobs)
            seconds = time.perf_counter() - t0
            assert _findings(report) == expected, (
                f"warm process engine at {jobs} workers diverged from the "
                f"serial streaming findings"
            )
            warm_jobs[str(jobs)] = {
                "seconds": seconds,
                "events_per_sec": NUM_EVENTS / seconds,
                "speedup_vs_serial": serial_seconds / seconds,
                "overhead": dict(warm.stats),
            }
    results["process_warm"] = warm_jobs
    results["serial"] = {
        "1": {
            "seconds": serial_seconds,
            "events_per_sec": NUM_EVENTS / serial_seconds,
            "speedup_vs_serial": 1.0,
        }
    }

    cores = _available_cores()
    enforce = cores >= MIN_CORES_FOR_SPEEDUP
    record = {
        "benchmark": "engine_scaling",
        "num_events": NUM_EVENTS,
        "num_shards": store.num_shards,
        "shard_events": DEFAULT_SHARD_EVENTS,
        "worker_counts": list(WORKER_COUNTS),
        "available_cores": cores,
        "min_process_speedup": MIN_PROCESS_SPEEDUP,
        "speedup_enforced": enforce,
        "warm_pool_full_sweep": BENCH_POOL,
        "engines": results,
    }
    _RECORD.update(record)
    out_path = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    peak_workers = max(WORKER_COUNTS)
    process_at_4 = results["process"][str(peak_workers)]["speedup_vs_serial"]
    if enforce:
        assert process_at_4 >= MIN_PROCESS_SPEEDUP, (
            f"process engine at {peak_workers} workers reaches only "
            f"{process_at_4:.2f}x of serial streaming analysis (need >= "
            f"{MIN_PROCESS_SPEEDUP}x on {cores} cores); see {out_path}"
        )
    else:
        # Not enough cores for a parallel speedup: the record documents
        # the measurement, and correctness was asserted above regardless.
        assert process_at_4 > 0


def test_process_engine_beats_thread_engine_on_folds(store):
    """Sanity on the GIL story: given cores, processes beat threads.

    Thread folds serialize on the GIL (only shard decode overlaps), so at
    4 workers the process engine should never be meaningfully slower than
    the thread engine on fold-dominated work.  Only enforced where the
    hardware can show it; everywhere else the comparison is recorded by
    the scaling test above.
    """
    if _available_cores() < MIN_CORES_FOR_SPEEDUP:
        pytest.skip("needs >= 4 cores to compare parallel fold throughput")
    assert "engines" in _RECORD, "scaling benchmark must run first"
    peak = str(max(WORKER_COUNTS))
    thread_4 = _RECORD["engines"]["thread"][peak]["seconds"]
    process_4 = _RECORD["engines"]["process"][peak]["seconds"]
    assert process_4 <= thread_4 * 1.25, (
        f"process folds ({process_4:.2f}s) should not trail thread folds "
        f"({thread_4:.2f}s) at 4 workers"
    )
