"""Benchmark regenerating Figure 4 (predicted vs actual speedup)."""

import pytest

from repro.experiments import fig4_speedup
from repro.experiments.common import GLOBAL_CACHE


@pytest.mark.benchmark(group="figure4")
def test_fig4_predicted_vs_actual(benchmark, sweep_sizes):
    result = benchmark.pedantic(
        lambda: fig4_speedup.run(sizes=sweep_sizes, cache=GLOBAL_CACHE),
        rounds=1, iterations=1,
    )
    print("\n" + fig4_speedup.render(result))
    assert result.points, "expected at least one (predicted, actual) point"
    for point in result.points:
        assert point.predicted_speedup >= 1.0
        assert point.actual_speedup > 0.5
    # Paper: 14% mean relative error (excluding one outlier); allow slack for
    # the simulated substrate while still requiring predictions to be useful.
    mre = result.mean_relative_error(exclude_outliers=True)
    assert mre < 0.35
    benchmark.extra_info["mean_relative_error"] = mre
    benchmark.extra_info["mse"] = result.mean_squared_error(exclude_outliers=True)
