"""Hostile-trace throughput: generation rate and analysis over hostile stores.

The nightly fuzz leg pushes multi-million-event adversarial traces through
every engine, so the *generator* and the *hostile-layout* analysis path
both need a tracked throughput record.  Measures events/sec for
:func:`make_hostile_trace`, for writing the shard-boundary-hostile store
layout (random cuts, mixed formats, spliced empty shards), and for
analysing that layout serially — written to ``BENCH_hostile.json`` for the
benchmark-regression gate.

Env knobs: ``OMPDATAPERF_BENCH_HOSTILE_EVENTS`` (default 300000) and
``OMPDATAPERF_BENCH_HOSTILE_SEED`` (default 20260808).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from time import perf_counter

import pytest

from repro.core.analysis import analyze_stream, analyze_trace
from repro.events.hostile import make_hostile_trace, write_hostile_store
from repro.events.validation import validate_trace

pytestmark = pytest.mark.slow

NUM_EVENTS = int(os.environ.get("OMPDATAPERF_BENCH_HOSTILE_EVENTS", 300_000))
SEED = int(os.environ.get("OMPDATAPERF_BENCH_HOSTILE_SEED", 20260808))

#: The generator must stay fast enough for multi-million-event nightly
#: sweeps: floor on generated events per second.
MIN_GENERATE_RATE = float(
    os.environ.get("OMPDATAPERF_BENCH_HOSTILE_MIN_RATE", "20000")
)


def test_hostile_generation_and_analysis_throughput():
    started = perf_counter()
    trace = make_hostile_trace(NUM_EVENTS, seed=SEED)
    generate_seconds = perf_counter() - started
    num_events = len(trace)

    started = perf_counter()
    validate_trace(trace)
    validate_seconds = perf_counter() - started

    with tempfile.TemporaryDirectory(prefix="ompdataperf-hostile-bench-") as scratch:
        started = perf_counter()
        store = write_hostile_store(trace, Path(scratch) / "store", seed=SEED)
        write_seconds = perf_counter() - started

        started = perf_counter()
        report = analyze_stream(store)
        analyze_store_seconds = perf_counter() - started

    started = perf_counter()
    baseline = analyze_trace(trace)
    analyze_columnar_seconds = perf_counter() - started
    assert report.counts == baseline.counts  # hostile layout changes nothing

    record = {
        "benchmark": "hostile_throughput",
        "seed": SEED,
        "num_events": num_events,
        "num_shards": store.num_shards,
        "generate_seconds": generate_seconds,
        "generate_events_per_sec": num_events / generate_seconds,
        "validate_seconds": validate_seconds,
        "write_store_seconds": write_seconds,
        "analyze_store_seconds": analyze_store_seconds,
        "analyze_store_events_per_sec": num_events / analyze_store_seconds,
        "analyze_columnar_seconds": analyze_columnar_seconds,
        "hostile_layout_overhead": analyze_store_seconds / analyze_columnar_seconds,
    }
    out_path = Path(__file__).resolve().parent.parent / "BENCH_hostile.json"
    out_path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    rate = record["generate_events_per_sec"]
    assert rate >= MIN_GENERATE_RATE, (
        f"hostile generator produced only {rate:.0f} events/sec "
        f"(need >= {MIN_GENERATE_RATE:.0f}); see {out_path}"
    )
