"""Benchmarks regenerating Table 4 and Figure 5 (hash evaluation, Appendix B)."""

import pytest

from repro.apps.base import ProblemSize
from repro.experiments import fig5_hash_throughput, table4_hashrate


@pytest.mark.benchmark(group="table4")
def test_table4_hash_rates(benchmark):
    result = benchmark.pedantic(
        lambda: table4_hashrate.run(size=ProblemSize.SMALL, max_payloads=96, max_bytes=2 << 20),
        rounds=1, iterations=1,
    )
    print("\n" + table4_hashrate.render(result))
    assert result.cells
    # Relative ordering reproduces: the vectorised and library hashes are the
    # only viable collector defaults, far ahead of the word-at-a-time hashes,
    # which in turn beat the byte-at-a-time FNV family.
    assert result.average_rate("vector64") > 10 * result.average_rate("xxh64")
    assert result.average_rate("crc32") > result.average_rate("xxh64")
    assert result.average_rate("xxh64") > result.average_rate("fnv1a64") * 0.5
    benchmark.extra_info["fastest"] = result.fastest_hasher()


@pytest.mark.benchmark(group="figure5")
def test_fig5_throughput_vs_size(benchmark):
    sizes = fig5_hash_throughput.default_sizes(max_power=20)
    result = benchmark.pedantic(
        lambda: fig5_hash_throughput.run(sizes=sizes),
        rounds=1, iterations=1,
    )
    print("\n" + fig5_hash_throughput.render(result))
    transfer = {p.nbytes: p.bytes_per_second for p in result.series("data transfer (modelled)")}
    fast_hash = {p.nbytes: p.bytes_per_second for p in result.series("vector64")}
    crc = {p.nbytes: p.bytes_per_second for p in result.series("crc32")}
    # Small payloads are hashed much faster than they can be transferred
    # (the paper reports 100-200x for <=64 B payloads; the Python analogue is
    # smaller but the direction must hold).
    assert crc[64] > transfer[64]
    # Throughput grows with payload size for the bulk hashes.
    assert fast_hash[1 << 20] > fast_hash[1 << 10]
    # Transfer throughput saturates towards the modelled link bandwidth.
    assert transfer[1 << 20] > transfer[1 << 12] > transfer[1 << 6]
