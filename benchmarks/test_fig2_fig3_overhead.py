"""Benchmarks regenerating Figure 2 (runtime overhead) and Figure 3 (space overhead)."""

import pytest

from repro.experiments import fig2_overhead, fig3_space
from repro.experiments.common import GLOBAL_CACHE


@pytest.mark.benchmark(group="figure2")
def test_fig2_runtime_overhead(benchmark, sweep_sizes):
    result = benchmark.pedantic(
        lambda: fig2_overhead.run(sizes=sweep_sizes, cache=GLOBAL_CACHE),
        rounds=1, iterations=1,
    )
    print("\n" + fig2_overhead.render(result))
    # Shape checks against the paper's headline numbers: low geometric-mean
    # overhead, bounded worst case, every slowdown >= 1.
    assert 1.0 <= result.geometric_mean_slowdown < 1.25
    assert result.worst_slowdown < 1.6
    benchmark.extra_info["geomean_slowdown"] = result.geometric_mean_slowdown
    benchmark.extra_info["worst_slowdown"] = result.worst_slowdown


@pytest.mark.benchmark(group="figure3")
def test_fig3_space_overhead(benchmark, sweep_sizes):
    result = benchmark.pedantic(
        lambda: fig3_space.run(sizes=sweep_sizes, cache=GLOBAL_CACHE),
        rounds=1, iterations=1,
    )
    print("\n" + fig3_space.render(result))
    overheads = [row.overhead_bytes for row in result.rows]
    # The paper reports footprints between ~1 KB and a few MB.
    assert min(overheads) >= 256
    assert max(overheads) < 64 * (1 << 20)
    # tealeaf accumulates collector memory fastest (Section 7.4).
    assert result.heaviest_app() == "tealeaf"
    benchmark.extra_info["geomean_rate_bytes_per_s"] = result.geometric_mean_rate
