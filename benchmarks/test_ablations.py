"""Ablation benchmarks for the design choices called out in DESIGN.md.

* content hashing vs address/size keys for duplicate detection;
* Algorithm 2's queue-based matching vs a naive quadratic matcher;
* detector throughput on large traces (the post-mortem analysis must stay
  cheap relative to collecting the trace).
"""

from collections import defaultdict

import pytest

from repro.apps.base import AppVariant, ProblemSize
from repro.core.detectors.duplicates import count_redundant_transfers, find_duplicate_transfers
from repro.core.detectors.roundtrips import count_round_trips, find_round_trips
from repro.experiments.common import GLOBAL_CACHE


def _trace(app: str = "tealeaf", size: ProblemSize = ProblemSize.SMALL):
    return GLOBAL_CACHE.run(app, size, AppVariant.BASELINE).profile.trace


def _duplicates_by_address(events):
    """Ablation: group by (host address, destination, size) instead of content."""
    groups = defaultdict(list)
    for e in events:
        if e.is_transfer:
            groups[(e.src_addr, e.dest_device_num, e.nbytes)].append(e)
    return sum(len(g) - 1 for g in groups.values() if len(g) >= 2)


def _round_trips_naive(events):
    """Ablation: O(n^2) matching of outbound transfers to later returns."""
    transfers = [e for e in events if e.is_transfer]
    count = 0
    used = set()
    for tx in transfers:
        for rx in transfers:
            if rx.seq in used or rx.seq == tx.seq:
                continue
            if (rx.content_hash == tx.content_hash
                    and rx.dest_device_num == tx.src_device_num
                    and rx.start_time >= tx.end_time):
                count += 1
                used.add(rx.seq)
                break
    return count


@pytest.mark.benchmark(group="ablation-duplicates")
def test_ablation_content_vs_address_keys(benchmark):
    trace = _trace()
    content_count = benchmark.pedantic(
        lambda: count_redundant_transfers(find_duplicate_transfers(trace.data_op_events)),
        rounds=1, iterations=1,
    )
    address_count = _duplicates_by_address(trace.data_op_events)
    # Address-based grouping cannot distinguish "same buffer, new data" from
    # "same buffer, same data": it over-reports duplicates on tealeaf, whose
    # reduction scalar is re-sent with *changing* values only sometimes.
    assert address_count >= content_count
    print(f"\ncontent-keyed duplicates: {content_count}, address-keyed: {address_count}")


@pytest.mark.benchmark(group="ablation-roundtrips")
def test_ablation_queue_vs_naive_roundtrips(benchmark):
    trace = _trace("bfs")
    queue_count = benchmark.pedantic(
        lambda: count_round_trips(find_round_trips(trace.data_op_events)),
        rounds=1, iterations=1,
    )
    naive_count = _round_trips_naive(trace.data_op_events)
    # The naive matcher consumes each return leg once, so it reports at most
    # as many trips as Algorithm 2 (which lets one return close every
    # outstanding send of the same payload, per the paper).
    assert naive_count <= queue_count
    assert queue_count == 10  # the bfs flag, as in Table 1
    print(f"\nqueue-based trips: {queue_count}, naive trips: {naive_count}")


@pytest.mark.benchmark(group="analysis-throughput")
def test_detector_throughput_on_large_trace(benchmark):
    trace = _trace("tealeaf", ProblemSize.MEDIUM)

    def analyze():
        from repro.core.analysis import analyze_trace

        return analyze_trace(trace)

    report = benchmark.pedantic(analyze, rounds=3, iterations=1)
    events_per_second = len(trace) / max(benchmark.stats.stats.mean, 1e-9)
    print(f"\nanalysed {len(trace)} events at {events_per_second:,.0f} events/s")
    assert report.counts.repeated_allocations == 4706
    assert events_per_second > 10_000
