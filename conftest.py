"""Repository-level pytest configuration.

Ensures the ``src`` layout is importable even when the package has not been
installed (useful on offline machines where editable installs are awkward).
An installed ``repro`` package always takes precedence because site-packages
appears earlier on ``sys.path`` than this late insertion.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
