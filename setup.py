"""Compatibility shim so ``pip install -e .`` works without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only exists so
that legacy (non-PEP 660) editable installs succeed on minimal offline
environments, e.g.::

    pip install -e . --no-build-isolation
    # or, if PEP 517 editable builds are unavailable:
    python setup.py develop
"""

from setuptools import setup

setup()
